"""Run-level metrics (percentiles, retry histogram, conflict
observability) and the full-mix harness."""

from __future__ import annotations

import pytest

from helpers import bank_engine, txn
from repro.bench import fullmix
from repro.core.stats import BatchStats, RunStats


class TestRunMetrics:
    def make_run(self, latencies):
        run = RunStats()
        for i, lat in enumerate(latencies):
            run.add(BatchStats(i, 10, 10, 0, latency_ns=float(lat)))
        return run

    def test_percentiles(self):
        run = self.make_run([100, 200, 300, 400, 500])
        assert run.latency_percentile(0) == 100
        assert run.latency_percentile(50) == 300
        assert run.latency_percentile(100) == 500

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            self.make_run([1]).latency_percentile(101)

    def test_percentile_empty_run(self):
        assert RunStats().latency_percentile(50) == 0.0

    def test_abort_reason_totals(self):
        run = RunStats()
        b1 = BatchStats(0, 4, 2, 2)
        b1.abort_reasons["waw"] = 2
        b2 = BatchStats(1, 4, 3, 1)
        b2.abort_reasons["waw"] = 1
        b2.abort_reasons["raw"] = 1
        run.add(b1)
        run.add(b2)
        totals = run.abort_reason_totals()
        assert totals["waw"] == 3
        assert totals["raw"] == 1


class TestEngineObservability:
    def test_commit_attempts_recorded(self):
        engine, _, _ = bank_engine()
        txns = [txn("transfer", 0, 1, 1) for _ in range(4)]
        for i, t in enumerate(txns):
            t.tid = i
        result = engine.run_batch(txns)
        assert result.stats.commit_attempts[1] == 1
        retry = engine.run_batch(result.aborted)
        assert retry.stats.commit_attempts[2] == 1

    def test_registration_counts_and_chain(self):
        engine, _, _ = bank_engine()
        txns = [txn("transfer", 0, 1, 1) for _ in range(8)]
        for i, t in enumerate(txns):
            t.tid = i
        result = engine.run_batch(txns)
        stats = result.stats
        assert stats.registered_reads == 16   # 2 reads/txn, deduped
        assert stats.registered_writes == 16
        assert stats.max_atomic_chain >= 8    # all txns hit accounts 0/1


class TestFullMix:
    def test_all_five_types_flow(self):
        result = fullmix.run(scale=32.0, rounds=3)
        assert result.mtps > 0
        assert 0 < result.commit_rate <= 1
        # read-only types never CC-abort
        assert result.per_proc_rate["orderstatus"] == pytest.approx(1.0)
        assert result.per_proc_rate["stocklevel"] == pytest.approx(1.0)
        # writers see some contention but mostly commit
        assert result.per_proc_rate["neworder"] > 0.3
        assert result.per_proc_rate["payment"] > 0.3
        # retries exist and decay
        hist = result.retry_histogram
        assert hist.get(1, 0) > hist.get(2, 0)
        assert result.p99_us >= result.p50_us
        assert "Full TPC-C mix" in result.format()


class TestContentionSweep:
    def test_optimized_curve_degrades_gracefully(self):
        from repro.bench import sweep

        result = sweep.run(scale=32.0, rounds=2, hot_probs=(0.0, 1.0))
        cold_opt = result.cells[(0.0, True)]
        hot_opt = result.cells[(1.0, True)]
        cold_raw = result.cells[(0.0, False)]
        hot_raw = result.cells[(1.0, False)]
        # paper SectionVI-F: more popular-data access -> more aborts, and the
        # optimizations keep the engine far above the unoptimized one
        assert hot_opt[1] <= cold_opt[1] + 0.02
        assert hot_opt[0] > hot_raw[0]
        assert cold_opt[0] > cold_raw[0]
        assert "hot-data access frequency" in result.format()

"""Opt-in host wall-clock regression gate (``pytest -m perf``).

Deselected by default (``addopts = -m "not perf"``): wall-clock numbers
are machine-dependent and have nothing to do with the simulated-time
correctness the default suite checks.  The gate logic itself lives in
``scripts/check_wallclock.py`` so CI can also run it standalone.
"""

from __future__ import annotations

import importlib.util
import os

import pytest

_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
_BASELINE = os.path.join(_ROOT, "BENCH_wallclock.json")


def _load_gate():
    path = os.path.join(_ROOT, "scripts", "check_wallclock.py")
    spec = importlib.util.spec_from_file_location("check_wallclock", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.perf
def test_execute_phase_within_30pct_of_committed_baseline():
    if not os.path.exists(_BASELINE):
        pytest.skip("no committed BENCH_wallclock.json baseline")
    gate = _load_gate()
    assert gate.check(_BASELINE) == 0, (
        "execute-phase host time regressed >30% vs BENCH_wallclock.json; "
        "investigate, or regenerate the baseline with "
        "`python benchmarks/bench_wallclock.py` if the change is intended"
    )


@pytest.mark.perf
def test_batched_beats_columnar_on_execute_writeback():
    gate = _load_gate()
    assert gate.check_batched() == 0, (
        "the batched executor no longer beats the columnar path by the "
        "required floor on execute+writeback at the headline batch size"
    )


@pytest.mark.perf
def test_parallel_beats_batched_on_execute():
    """The sharded executor's speedup gate (auto-skips below 4 cores —
    check_parallel returns 0 with a message there, same as the CLI)."""
    gate = _load_gate()
    assert gate.check_parallel() == 0, (
        "4 parallel workers no longer beat the in-process batched path "
        "by the required floor on execute at the headline batch size"
    )

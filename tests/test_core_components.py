"""Core components: hotspot detection, conflict log, split flags,
delayed updates, memory modes, config, stats."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from helpers import build_bank
from repro.core import (
    ConflictLog,
    DelayedUpdater,
    FlagGroups,
    HotspotDetector,
    LTPGConfig,
    MemoryMode,
    NO_TID,
    bucket_size_for,
    resolve_memory_mode,
)
from repro.core.stats import BatchStats, RunStats
from repro.errors import StorageError, TransactionError
from repro.gpusim import Device, DeviceConfig, KernelContext, LaunchGeometry
from repro.storage import Database, make_schema


def make_db(rows: int = 100) -> Database:
    db = Database()
    t = db.create_table(make_schema("t", "id", "a", "b"))
    t.bulk_load(np.arange(rows), {"a": np.zeros(rows, dtype=np.int64)})
    return db


class TestHotspot:
    def test_bucket_size_formula(self):
        assert bucket_size_for(0.5) == 1
        assert bucket_size_for(1.0) == 1
        assert bucket_size_for(1.01) == 32
        assert bucket_size_for(33.0) == 64
        assert bucket_size_for(2048.0) == 2048

    def test_detector_measures_frequency(self):
        db = make_db(rows=10)
        det = HotspotDetector(db)
        heats = det.measure({0: 50})
        assert heats[0].frequency == 5.0
        assert heats[0].bucket_size == 32
        assert heats[0].is_hot

    def test_cold_table_standard_bucket(self):
        db = make_db(rows=1000)
        heats = HotspotDetector(db).measure({0: 10})
        assert heats[0].bucket_size == 1
        assert not heats[0].is_hot

    def test_pre_marked_table_stays_hot(self):
        db = make_db(rows=1000)
        det = HotspotDetector(db, pre_marked=frozenset({"t"}))
        heats = det.measure({0: 1})
        assert heats[0].bucket_size == 32


class TestFlagGroups:
    def test_default_single_group(self):
        db = make_db()
        flags = FlagGroups(db)
        assert flags.num_groups(0) == 1
        assert flags.group_of(0, "a") == 0
        assert flags.group_of(0, "b") == 0

    def test_split_column_gets_own_group(self):
        db = make_db()
        flags = FlagGroups(db, frozenset({("t", "a")}))
        assert flags.num_groups(0) == 2
        assert flags.group_of(0, "a") == 1
        assert flags.group_of(0, "b") == 0

    def test_disabled_splitting(self):
        db = make_db()
        flags = FlagGroups(db, frozenset({("t", "a")}), enabled=False)
        assert flags.num_groups(0) == 1
        assert flags.group_of(0, "a") == 0

    def test_unknown_column_rejected(self):
        db = make_db()
        with pytest.raises(StorageError):
            FlagGroups(db, frozenset({("t", "zzz")}))

    def test_deterministic_group_assignment(self):
        db = make_db()
        f1 = FlagGroups(db, frozenset({("t", "a"), ("t", "b")}))
        f2 = FlagGroups(db, frozenset({("t", "b"), ("t", "a")}))
        assert f1.group_of(0, "a") == f2.group_of(0, "a")
        assert f1.split_column_count() == 2


class TestConflictLog:
    def make_log(self, rows=100, split=frozenset()):
        db = make_db(rows)
        flags = FlagGroups(db, split)
        log = ConflictLog(db, flags)
        heats = HotspotDetector(db).measure({0: rows * 2})  # hot
        log.begin_batch(heats)
        return log, db

    def arr(self, *vals):
        return np.asarray(vals, dtype=np.int64)

    def test_register_and_query_minima(self):
        log, db = self.make_log()
        keys = log.encode(self.arr(0, 0, 0), self.arr(5, 5, 7), self.arr(0, 0, 0))
        log.register_writes(keys, self.arr(9, 3, 4), self.arr(0, 0, 0))
        assert list(log.min_write(keys)) == [3, 3, 4]
        assert log.min_read(keys)[0] == NO_TID

    def test_end_batch_resets(self):
        log, db = self.make_log()
        keys = log.encode(self.arr(0), self.arr(1), self.arr(0))
        log.register_reads(keys, self.arr(5), self.arr(0))
        log.end_batch()
        log.begin_batch(HotspotDetector(db).measure({0: 1}))
        assert log.min_read(keys)[0] == NO_TID

    def test_insert_winner_is_min_tid(self):
        log, _ = self.make_log()
        log.register_inserts(self.arr(0, 0, 0), self.arr(42, 42, 7), self.arr(9, 2, 5))
        assert log.insert_winner(0, 42) == 2
        assert log.insert_winner(0, 7) == 5
        assert log.insert_winner(0, 999) == NO_TID
        winners = log.insert_winners(self.arr(0, 0), self.arr(42, 7))
        assert list(winners) == [2, 5]

    def test_split_groups_do_not_collide(self):
        log, _ = self.make_log(split=frozenset({("t", "a")}))
        k_a = log.encode(self.arr(0), self.arr(5), self.arr(1))
        k_default = log.encode(self.arr(0), self.arr(5), self.arr(0))
        assert k_a[0] != k_default[0]
        log.register_writes(k_a, self.arr(1), self.arr(0))
        assert log.min_write(k_default)[0] == NO_TID

    def test_contention_recorded_with_bucket_scaling(self):
        log, _ = self.make_log(rows=4)  # tiny: very hot
        cfg = DeviceConfig()
        geometry = LaunchGeometry.for_threads(64)
        ctx_std = KernelContext("k", geometry, cfg)
        ctx_big = KernelContext("k", geometry, cfg)
        keys = log.encode(
            np.zeros(64, dtype=np.int64),
            np.zeros(64, dtype=np.int64),
            np.zeros(64, dtype=np.int64),
        )
        tids = np.arange(64, dtype=np.int64)
        tables = np.zeros(64, dtype=np.int64)
        log.dynamic_buckets = False
        log.register_writes(keys, tids, tables, ctx_std)
        log.dynamic_buckets = True
        log.register_writes(keys, tids, tables, ctx_big)
        assert ctx_big.stats.atomic_max_chain < ctx_std.stats.atomic_max_chain

    def test_memory_report_hot_fraction_small_for_big_tables(self):
        db = make_db(rows=10_000)
        flags = FlagGroups(db)
        log = ConflictLog(db, flags)
        # two tables: add a tiny hot one
        hot = db.create_table(make_schema("hot", "id", "x"))
        for k in range(4):
            hot.insert(k)
        log = ConflictLog(db, FlagGroups(db))
        heats = HotspotDetector(db).measure({0: 100, 1: 5000})
        log.begin_batch(heats)
        standard, large = log.memory_report()
        assert large > 0
        assert standard > 0
        assert large / (standard + large) < 0.6

    def test_misaligned_arrays_rejected(self):
        log, _ = self.make_log()
        with pytest.raises(TransactionError):
            log.register_reads(self.arr(1, 2), self.arr(1), self.arr(0, 0))


class TestDelayedUpdater:
    def test_apply_merges_deltas(self):
        db, _ = build_bank(accounts=4)
        upd = DelayedUpdater(db, frozenset({("accounts", "balance")}))
        assert upd.is_delayed(0, "balance")
        assert not upd.is_delayed(0, "flags")
        n = upd.apply([(0, 1, "balance", 5), (0, 1, "balance", 7), (0, 2, "balance", 1)])
        assert n == 2
        assert db.table("accounts").read(1, "balance") == 1012
        assert db.table("accounts").read(2, "balance") == 1001

    def test_disabled_updater_has_no_columns(self):
        db, _ = build_bank(accounts=4)
        upd = DelayedUpdater(db, frozenset({("accounts", "balance")}), enabled=False)
        assert not upd.is_delayed(0, "balance")

    def test_apply_records_costs(self):
        db, _ = build_bank(accounts=4)
        upd = DelayedUpdater(db, frozenset({("accounts", "balance")}))
        ctx = KernelContext("k", LaunchGeometry.for_threads(4), DeviceConfig())
        upd.apply([(0, 1, "balance", 5)], ctx)
        assert ctx.stats.global_writes == 1
        assert ctx.stats.instructions > 0

    def test_apply_empty(self):
        db, _ = build_bank(accounts=4)
        upd = DelayedUpdater(db, frozenset())
        assert upd.apply([]) == 0


class TestMemoryModes:
    def test_auto_picks_device_when_fits(self):
        db, _ = build_bank(accounts=8)
        plan = resolve_memory_mode(LTPGConfig(), db, Device())
        assert plan.mode is MemoryMode.DEVICE
        assert plan.snapshot_resident

    def test_auto_picks_unified_when_too_big(self):
        db, _ = build_bank(accounts=1024)
        small = dataclasses.replace(DeviceConfig(), device_memory_bytes=4096)
        plan = resolve_memory_mode(LTPGConfig(), db, Device(small))
        assert plan.mode is MemoryMode.UNIFIED
        assert not plan.snapshot_resident

    def test_explicit_mode_honored(self):
        db, _ = build_bank(accounts=8)
        config = LTPGConfig(memory_mode=MemoryMode.ZERO_COPY)
        plan = resolve_memory_mode(config, db, Device())
        assert plan.mode is MemoryMode.ZERO_COPY


class TestConfig:
    def test_effective_retry_delay(self):
        assert LTPGConfig().effective_retry_delay == 1
        assert LTPGConfig(pipelined=True).effective_retry_delay == 2
        assert LTPGConfig(retry_delay_batches=3).effective_retry_delay == 3

    def test_without_optimizations(self):
        base = LTPGConfig(delayed_columns=frozenset({("t", "a")}))
        off = base.without_optimizations()
        assert not off.logical_reordering
        assert not off.split_flags
        assert not off.delayed_update
        assert not off.dynamic_buckets
        assert not off.adaptive_warps
        assert not off.pipelined
        assert off.batch_size == base.batch_size

    def test_all_split_columns_includes_delayed(self):
        config = LTPGConfig(
            delayed_columns=frozenset({("t", "a")}),
            split_columns=frozenset({("t", "b")}),
        )
        assert config.all_split_columns() == frozenset({("t", "a"), ("t", "b")})

    def test_invalid_batch_size(self):
        with pytest.raises(TransactionError):
            LTPGConfig(batch_size=0)


class TestStats:
    def test_commit_rate_counts_logic_aborts_as_decided(self):
        s = BatchStats(0, num_txns=10, committed=6, aborted=2, logic_aborted=2)
        assert s.commit_rate == 0.8

    def test_run_stats_throughput(self):
        run = RunStats()
        run.add(BatchStats(0, 100, 80, 20, latency_ns=1e6))
        run.add(BatchStats(1, 100, 90, 10, latency_ns=1e6))
        assert run.total_committed == 170
        assert run.throughput_tps == pytest.approx(170 / 2e-3)
        assert run.mean_latency_ns == 1e6

    def test_phase_totals(self):
        run = RunStats()
        run.add(BatchStats(0, 1, 1, 0, phase_ns={"execute": 5.0}))
        run.add(BatchStats(1, 1, 1, 0, phase_ns={"execute": 7.0, "conflict": 1.0}))
        assert run.phase_totals() == {"execute": 12.0, "conflict": 1.0}

    def test_empty_run(self):
        run = RunStats()
        assert run.throughput_tps == 0.0
        assert run.mean_commit_rate == 1.0

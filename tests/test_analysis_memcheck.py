"""Memcheck unit tests: shadow init-bitmaps, out-of-bounds reporting,
and the AtomicArray bounds-validation contract (negative / OOB indices
raise DeviceError instead of NumPy wraparound)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import AccessKind, Sanitizer
from repro.errors import DeviceError
from repro.gpusim.atomics import AtomicArray
from repro.gpusim.device import Device
from repro.gpusim.kernel import KernelContext, LaunchGeometry
from repro.gpusim.config import DeviceConfig


def _kinds(san: Sanitizer) -> dict[str, int]:
    counts: dict[str, int] = {}
    for f in san.findings:
        counts[f.kind] = counts.get(f.kind, 0) + 1
    return counts


# ---------------------------------------------------------------------------
# bounds
# ---------------------------------------------------------------------------
def test_out_of_bounds_read_reported():
    san = Sanitizer()
    san.register_buffer("buf", size=8)
    san.begin_kernel("k")
    san.record("buf", [9], 3, AccessKind.READ)
    san.end_kernel()
    f = san.findings[0]
    assert f.kind == "out-of-bounds" and f.pass_name == "memcheck"
    assert f.subject == "buf" and f.index == 9
    assert "thread 3" in f.message


def test_negative_index_reported():
    san = Sanitizer()
    san.register_buffer("buf", size=8)
    san.begin_kernel("k")
    san.record("buf", [-1], 0, AccessKind.WRITE)
    san.end_kernel()
    assert _kinds(san) == {"out-of-bounds": 1}


def test_oob_accesses_do_not_reach_the_race_log():
    """Two threads both writing out of bounds: memcheck reports them,
    racecheck stays silent (the access never lands)."""
    san = Sanitizer()
    san.register_buffer("buf", size=4)
    san.begin_kernel("k")
    san.record("buf", [100], 0, AccessKind.WRITE)
    san.record("buf", [100], 1, AccessKind.WRITE)
    san.end_kernel()
    assert _kinds(san) == {"out-of-bounds": 2}


def test_unbounded_buffers_skip_bounds_checks():
    san = Sanitizer()
    san.begin_kernel("k")
    san.record("auto", [10**12], 0, AccessKind.WRITE)
    san.end_kernel()
    assert san.clean


# ---------------------------------------------------------------------------
# init tracking
# ---------------------------------------------------------------------------
def test_uninitialized_read_reported():
    san = Sanitizer()
    san.register_buffer("buf", size=8, initialized=False)
    san.begin_kernel("k")
    san.record("buf", [2], 0, AccessKind.READ)
    san.end_kernel()
    f = san.findings[0]
    assert f.kind == "uninitialized-read" and f.index == 2


def test_write_then_read_is_initialized():
    san = Sanitizer()
    san.register_buffer("buf", size=8, initialized=False)
    san.begin_kernel("k")
    san.record("buf", [2], 0, AccessKind.WRITE)
    san.end_kernel()
    san.begin_kernel("k2")
    san.record("buf", [2], 1, AccessKind.READ)
    san.record("buf", [3], 1, AccessKind.READ)  # still uninit
    san.end_kernel()
    assert _kinds(san) == {"uninitialized-read": 1}
    assert san.findings[0].index == 3


def test_initialized_buffers_skip_init_tracking():
    san = Sanitizer()
    san.register_buffer("buf", size=8, initialized=True)
    san.begin_kernel("k")
    san.record("buf", [0], 0, AccessKind.READ)
    san.end_kernel()
    assert san.clean


def test_register_buffer_grows_monotonically():
    san = Sanitizer()
    san.register_buffer("buf", size=4, initialized=False)
    san.register_buffer("buf", size=8)  # growth keeps the init bitmap
    san.begin_kernel("k")
    san.record("buf", [6], 0, AccessKind.READ)   # in the grown range
    san.record("buf", [9], 0, AccessKind.READ)   # still OOB
    san.end_kernel()
    assert _kinds(san) == {"uninitialized-read": 1, "out-of-bounds": 1}


def test_memory_manager_uninitialized_alloc():
    """fill=None models cudaMalloc without memset: reads before writes
    are flagged, writes initialize."""
    device = Device()
    san = Sanitizer()
    device.attach_sanitizer(san)
    buf = device.memory.alloc("scratch", 8, fill=None)
    with device.kernel("k", threads=2):
        buf.store([1], [42], threads=0)
        buf.load([1], threads=0)   # fine: written above
        buf.load([5], threads=1)   # uninitialized
    assert _kinds(san) == {"uninitialized-read": 1}
    assert san.findings[0].subject == "scratch"


# ---------------------------------------------------------------------------
# AtomicArray bounds validation (the satellite fix)
# ---------------------------------------------------------------------------
def test_atomic_scalar_rejects_negative_index():
    arr = AtomicArray(8)
    with pytest.raises(DeviceError):
        arr.atomic_add(-1, 5)
    assert (arr.data == 0).all()  # nothing wrapped around


def test_atomic_scalar_rejects_out_of_range():
    arr = AtomicArray(8)
    for op in (arr.atomic_min, arr.atomic_max, arr.atomic_add, arr.atomic_exch):
        with pytest.raises(DeviceError):
            op(8, 1)
    with pytest.raises(DeviceError):
        arr.atomic_cas(99, 0, 1)


def test_atomic_batch_rejects_negative_indices():
    arr = AtomicArray(8)
    with pytest.raises(DeviceError):
        arr.atomic_add_many(np.array([0, -3, 2]), np.array([1, 1, 1]))
    assert (arr.data == 0).all()  # batch rejected atomically, no partial apply


def test_atomic_batch_rejects_oob_indices():
    arr = AtomicArray(4)
    for op in (arr.atomic_min_many, arr.atomic_max_many, arr.atomic_add_many,
               arr.atomic_exch_many, arr.atomic_min_with_old):
        with pytest.raises(DeviceError):
            op(np.array([1, 4]), np.array([1, 1]))


def test_atomic_in_bounds_still_works():
    arr = AtomicArray(4)
    arr.atomic_add_many(np.array([0, 0, 3]), np.array([2, 3, 7]))
    assert arr.data[0] == 5 and arr.data[3] == 7


def test_atomic_oob_reported_to_sanitizer_before_raise():
    """A named, bound AtomicArray reports the bad address to memcheck
    and then raises — the fixture names the buffer and the offender."""
    san = Sanitizer()
    ctx = KernelContext("k", LaunchGeometry.for_threads(4), DeviceConfig())
    ctx.sanitizer = san
    arr = AtomicArray(4, name="conflict_slots").bind(ctx)
    san.begin_kernel("k")
    with pytest.raises(DeviceError):
        arr.atomic_add_many(np.array([0, 7]), np.array([1, 1]))
    san.end_kernel()
    oob = [f for f in san.findings if f.kind == "out-of-bounds"]
    assert len(oob) == 1
    assert oob[0].subject == "conflict_slots" and oob[0].index == 7


def test_named_atomic_traffic_is_clean_for_racecheck():
    san = Sanitizer()
    ctx = KernelContext("k", LaunchGeometry.for_threads(8), DeviceConfig())
    ctx.sanitizer = san
    arr = AtomicArray(4, name="ctr").bind(ctx)
    san.begin_kernel("k")
    arr.atomic_add_many(np.zeros(8, dtype=np.int64), np.ones(8, dtype=np.int64))
    san.end_kernel()
    assert san.clean
    assert san.accesses_logged == 8

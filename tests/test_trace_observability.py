"""Observability-harness tests: the repro.trace satellites.

* differential: profiler phase totals == summed ``BatchStats.phase_ns``
  across all three workloads;
* span trees nest without overlap per stream on traced runs;
* trace reproducibility: back-to-back runs on one device produce
  identical spans after ``Profiler.reset`` (stream clocks rewind to 0);
* Hypothesis properties for ``RunStats`` percentiles / aggregates;
* regression: a txn aborted in batch *k* with retry delay *d* is
  re-admitted in batch *k+d* exactly once, and its depth lands in the
  ``engine.reschedule_depth`` histogram;
* bench wiring: metrics ride along in steady-state and wallclock JSON.
"""

import importlib.util
import json
from collections import Counter as CounterDict
from pathlib import Path

import pytest
from helpers import bank_engine, tids, txn
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.workload import WORKLOAD_NAMES, build_workload
from repro.bench.reporting import format_metrics
from repro.bench.runner import steady_state_run
from repro.core import LTPGConfig
from repro.core.stats import BatchStats, RunStats
from repro.trace import validate_nesting
from repro.trace.cli import capture, main
from repro.txn.batch import BatchScheduler

pytestmark = pytest.mark.trace

PHASES = ("execute", "conflict", "writeback")


def _check_trace_module():
    path = Path(__file__).resolve().parent.parent / "scripts" / "check_trace.py"
    spec = importlib.util.spec_from_file_location("check_trace", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# -- satellite 1: profiler vs BatchStats differential -----------------------

@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
def test_profiler_phase_totals_match_batch_stats(workload):
    setup = build_workload(workload, seed=11)
    engine = setup.engine(batch_size=96, sanitize=False)
    scheduler = BatchScheduler(
        96, retry_delay_batches=engine.config.effective_retry_delay
    )
    scheduler.admit(setup.generator.make_batch(2 * 96))
    run = engine.process(scheduler, max_batches=2)
    assert run.num_batches == 2

    by_kernel = engine.device.profiler.by_kernel()
    totals = run.phase_totals()
    for phase in PHASES:
        assert by_kernel[phase] == pytest.approx(totals[phase], rel=1e-12), phase


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
def test_traced_span_trees_nest_per_stream(workload):
    tracer, _metrics, run = capture(workload, batches=2, batch_size=96)
    assert validate_nesting(tracer) == []
    # pipelined: h2d / compute / d2h legs land on distinct stream tracks
    assert len(tracer.tracks()) >= 2
    names = {s.name for s in tracer.spans}
    assert {f"phase:{p}" for p in PHASES} <= names
    # kernel spans are children of their phase span
    for span in tracer.spans:
        if span.name in PHASES:
            assert tracer.spans[span.parent].name == f"phase:{span.name}"
    # one async envelope per processed batch, overlap allowed
    assert len(tracer.async_spans) == run.num_batches
    # the simulated clock is the only clock: spans never run backwards
    for span in tracer.spans:
        assert span.end_ns >= span.start_ns >= 0.0


def test_phase_span_duration_covers_kernel(tmp_path):
    tracer, _metrics, run = capture("smallbank", batches=1, batch_size=64,
                                    pipelined=False)
    exec_phase = tracer.total_ns("phase:execute")
    exec_kernel = tracer.total_ns("execute")
    assert exec_kernel > 0.0
    assert exec_phase >= exec_kernel
    # phase spans agree with the stats the engine reported
    assert exec_kernel == pytest.approx(run.phase_totals()["execute"])


# -- satellite 4: Profiler.reset + trace reproducibility --------------------

def _traced_bank_engine():
    engine, _db, _reg = bank_engine(
        config=LTPGConfig(batch_size=8, trace=True)
    )
    return engine


def _run_fixed_batch(engine):
    batch = [
        txn("transfer", 0, 1, 5),
        txn("deposit", 2, 7),
        txn("audit", 3, 4),
        txn("transfer", 5, 6, 1),
    ]
    tids(batch)
    engine.run_batch(batch)
    return [
        (s.name, s.track, s.start_ns, s.end_ns, s.depth, s.parent)
        for s in engine.tracer.spans
    ]


def test_profiler_reset_rewinds_stream_clocks():
    engine = _traced_bank_engine()
    _run_fixed_batch(engine)
    device = engine.device
    assert device.stream(engine.compute_stream).time_ns > 0.0
    assert device.profiler.entries
    device.profiler.reset()
    assert device.profiler.entries == []
    for name in (engine.h2d_stream, engine.compute_stream, engine.d2h_stream):
        assert device.stream(name).time_ns == 0.0
        assert device.stream(name).busy_ns == 0.0


def test_back_to_back_traces_are_identical():
    engine = _traced_bank_engine()
    first = _run_fixed_batch(engine)
    assert min(s[2] for s in first) == 0.0  # first run starts at ns zero

    engine.device.profiler.reset()
    engine.tracer.reset()
    second = _run_fixed_batch(engine)
    assert min(s[2] for s in second) == 0.0  # ...and so does the second
    assert second == first


def _serve_fixed_stream(engine):
    """Serve a fixed request stream on a fresh virtual clock; capture
    every engine span plus the serve layer's own async spans."""
    from repro.serve.clock import run_simulation
    from repro.serve.orchestrator import Orchestrator
    from repro.serve.policies import DeadlinePolicy

    async def main():
        async with Orchestrator(
            engine, policy=DeadlinePolicy(4, max_wait_ns=500)
        ) as orch:
            futures = []
            for i, (name, params) in enumerate([
                ("transfer", (0, 1, 5)),
                ("deposit", (2, 7)),
                ("audit", (3, 4)),
                ("transfer", (5, 6, 1)),
                ("deposit", (9, 2)),
            ]):
                await orch.clock.sleep_ns(100 * i)
                futures.append(orch.post(name, params))
        return [await f for f in futures]

    responses = run_simulation(main())
    spans = [
        (s.name, s.track, s.start_ns, s.end_ns, s.depth, s.parent)
        for s in engine.tracer.spans
    ]
    serve_spans = [
        (s.name, s.track, s.start_ns, s.end_ns, tuple(sorted(s.args.items())))
        for s in engine.tracer.async_spans
        if s.track == "serve.batches"
    ]
    latencies = [r.latency_ns for r in responses]
    return spans, serve_spans, latencies


def test_serve_runs_reset_to_identical_traces():
    """reset_run_state() is to a serve run what Profiler.reset is to a
    batch: both timelines (device spans *and* serve batch spans) rewind
    to t=0 and replay bit-identically on the next run."""
    engine = _traced_bank_engine()
    first = _serve_fixed_stream(engine)
    assert min(s[2] for s in first[0]) == 0.0
    # fresh clock: the first cut lands exactly at the 500 ns deadline of
    # the t=0 arrival, not at some drifted later instant
    assert min(s[2] for s in first[1]) == 500.0

    engine.reset_run_state()
    second = _serve_fixed_stream(engine)
    assert second == first


def test_reset_run_state_rewinds_everything():
    """The engine-side hygiene behind back-to-back serve runs: clocks,
    tracer, metrics, and the batch counter all return to zero while
    persistent state (the database) survives."""
    engine = _traced_bank_engine()
    _run_fixed_batch(engine)
    digest = engine.database.state_digest()
    assert engine.device.stream(engine.compute_stream).time_ns > 0.0
    assert engine.tracer.spans

    engine.reset_run_state()
    assert engine.device.stream(engine.compute_stream).time_ns == 0.0
    assert engine.tracer.spans == []
    assert engine._batch_counter == 0
    assert len(engine.batch_log) == 0
    assert engine.database.state_digest() == digest


# -- satellite 2: Hypothesis properties for RunStats ------------------------

def _run_from(latencies):
    run = RunStats()
    for i, lat in enumerate(latencies):
        run.add(BatchStats(i, 10, 10, 0, latency_ns=lat))
    return run


latency_lists = st.lists(
    st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
    min_size=1,
    max_size=50,
)
percentiles = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


@given(latency_lists, percentiles, percentiles)
def test_latency_percentile_monotone_in_p(latencies, p1, p2):
    run = _run_from(latencies)
    lo, hi = sorted((p1, p2))
    assert run.latency_percentile(lo) <= run.latency_percentile(hi)


@given(latency_lists)
def test_latency_percentile_extremes(latencies):
    run = _run_from(latencies)
    assert run.latency_percentile(0) == min(latencies)
    assert run.latency_percentile(100) == max(latencies)


@given(st.floats(min_value=0.0, max_value=1e12, allow_nan=False), percentiles)
def test_latency_percentile_single_batch_is_constant(latency, p):
    run = _run_from([latency])
    assert run.latency_percentile(p) == latency


@given(st.sampled_from([-0.1, 100.1, 1e9, -5.0]))
def test_latency_percentile_rejects_out_of_range(p):
    with pytest.raises(ValueError):
        _run_from([1.0]).latency_percentile(p)


def test_empty_run_aggregates():
    run = RunStats()
    assert run.mean_commit_rate == 1.0
    assert run.abort_reason_totals() == CounterDict()
    assert run.latency_percentile(50) == 0.0
    assert run.reschedule_depth_totals() == CounterDict()
    assert run.metrics_summary()["atomic"]["ops"] == 0


@given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=64))
def test_all_aborted_run_aggregates(num_batches, batch_size):
    run = RunStats()
    for i in range(num_batches):
        run.add(
            BatchStats(
                i, batch_size, 0, batch_size,
                abort_reasons=CounterDict({"waw": batch_size}),
            )
        )
    assert run.mean_commit_rate == 0.0
    assert run.total_committed == 0
    totals = run.abort_reason_totals()
    assert totals["waw"] == num_batches * batch_size
    assert run.metrics_summary()["abort_reasons"] == {
        "waw": num_batches * batch_size
    }


# -- satellite 3: retry re-admission regression -----------------------------

@pytest.mark.parametrize("delay", [1, 2, 3])
def test_abort_readmitted_after_exact_delay(delay):
    engine = _traced_bank_engine()
    scheduler = BatchScheduler(4, retry_delay_batches=delay)
    # two transfers on the same accounts: the higher TID loses on WAW
    scheduler.admit([
        txn("transfer", 0, 1, 5),
        txn("transfer", 0, 1, 7),
        txn("audit", 2, 3),
        txn("audit", 4, 5),
    ])
    appearances: dict[int, list[int]] = {}
    aborted_tids: list[int] = []
    for k in range(delay + 2):
        # keep later batches non-empty with non-conflicting deposits
        scheduler.admit([txn("deposit", 16 + 2 * k + j, 1) for j in range(2)])
        batch = scheduler.next_batch()
        for t in batch:
            appearances.setdefault(t.tid, []).append(k)
        result = engine.run_batch(batch)
        if k == 0:
            aborted_tids = [t.tid for t in result.aborted]
            assert len(aborted_tids) == 1
        scheduler.requeue_aborted(result.aborted)

    # aborted in batch 0 -> re-admitted in batch 0 + delay, exactly once
    for tid in aborted_tids:
        assert appearances[tid] == [0, delay]
    # the retry committed on its second attempt: depth 1 in the histogram
    depths = engine.metrics.histogram("engine.reschedule_depth").counts
    assert depths[1] == len(aborted_tids)
    assert depths[0] > 0


# -- bench wiring -----------------------------------------------------------

class _DepositGenerator:
    """Round-robin commutative deposits: no CC aborts, fully full batches."""

    def __init__(self, accounts: int = 32):
        self.accounts = accounts
        self._i = 0

    def make_batch(self, size):
        out = [
            txn("deposit", (self._i + j) % self.accounts, 1)
            for j in range(size)
        ]
        self._i += size
        return out


def test_steady_state_run_snapshots_metrics_when_traced():
    engine, _db, _reg = bank_engine(
        config=LTPGConfig(batch_size=8, trace=True)
    )
    result = steady_state_run(engine, _DepositGenerator(), 8, 3)
    assert result.metrics is not None
    assert result.metrics["counters"]["txn.admitted"] == 24
    assert result.metrics["counters"]["txn.committed"] == 24


def test_steady_state_run_untraced_has_no_metrics():
    engine, _db, _reg = bank_engine(config=LTPGConfig(batch_size=8))
    result = steady_state_run(engine, _DepositGenerator(), 8, 2)
    assert engine.tracer is None and engine.metrics is None
    assert result.metrics is None


def test_wallclock_measure_metrics_and_json():
    from repro.bench.wallclock import WallclockResult, measure_metrics

    summary = measure_metrics(scale=512.0, batches=1)
    assert set(summary) == {
        "atomic", "warp", "conflict_log", "shard", "abort_reasons",
        "reschedule_depth",
    }
    assert summary["atomic"]["ops"] > 0
    result = WallclockResult(metrics=summary)
    assert result.to_json()["metrics"] is summary
    text = format_metrics(summary)
    assert "atomic.ops" in text


# -- CLI + schema validator -------------------------------------------------

def test_trace_cli_writes_valid_trace(tmp_path):
    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    rc = main([
        "--workload", "smallbank",
        "--batches", "2",
        "--batch-size", "64",
        "--out", str(trace_path),
        "--metrics-out", str(metrics_path),
    ])
    assert rc == 0
    trace = json.loads(trace_path.read_text())
    check_trace = _check_trace_module()
    assert check_trace.validate(trace, min_tracks=2) == []
    metrics = json.loads(metrics_path.read_text())
    assert metrics["counters"]["txn.admitted"] == 128


def test_trace_cli_rejects_bad_batch_count(tmp_path):
    assert main(["--batches", "0", "--out", str(tmp_path / "t.json")]) == 2


def test_check_trace_rejects_malformed_traces():
    check_trace = _check_trace_module()
    assert check_trace.validate({}) == ["traceEvents missing or empty"]
    bad = {
        "traceEvents": [
            {"ph": "X", "name": "a", "tid": 0, "ts": 0.0, "dur": 10.0},
            {"ph": "X", "name": "b", "tid": 0, "ts": 5.0, "dur": 10.0},
        ]
    }
    errors = check_trace.validate(bad, min_tracks=1)
    assert any("escapes" in e for e in errors)
    assert any("missing phase span" in e for e in errors)


# -- per-procedure-group execute observability -------------------------------

def test_execute_group_spans_and_metrics():
    """Each traced batch subdivides its execute window into one span per
    procedure group (track ``execute.groups``), and the metrics registry
    tallies per-procedure ops and lane counts."""
    tracer, metrics, run = capture("tpcc", batches=2, batch_size=96)

    group_spans = [s for s in tracer.spans if s.track == "execute.groups"]
    assert group_spans, "no per-procedure-group execute spans recorded"
    names = {s.name for s in group_spans}
    assert names <= {"execute:neworder", "execute:payment"}
    assert len(names) == 2  # the 50/50 mix runs both procedures
    for span in group_spans:
        assert span.cat == "group"
        assert span.args["lanes"] > 0
        assert span.args["ops"] >= 0
        assert span.end_ns >= span.start_ns
    # spans account for every transaction of every batch exactly once
    assert sum(s.args["lanes"] for s in group_spans) == run.total_admitted

    ops_hist = metrics.histogram("execute.procedure_ops")
    size_hist = metrics.histogram("execute.group_size")
    assert set(ops_hist.counts) == {"neworder", "payment"}
    assert size_hist.counts["neworder"] + size_hist.counts["payment"] \
        == run.total_admitted
    # ops tallies match what the spans carried
    for proc in ("neworder", "payment"):
        span_ops = sum(
            s.args["ops"] for s in group_spans if s.name == f"execute:{proc}"
        )
        assert ops_hist.counts[proc] == span_ops

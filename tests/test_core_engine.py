"""LTPG engine end-to-end semantics on the bank workload."""

from __future__ import annotations

import copy

import pytest

from helpers import bank_engine, build_bank, tids, txn
from repro.core import LTPGConfig, LTPGEngine
from repro.errors import TransactionError
from repro.txn import BatchScheduler, TxnStatus, apply_local_sets, BufferedContext


def run_batch(engine, txns):
    tids(txns)
    return engine.run_batch(txns)


class TestBasicCommit:
    def test_disjoint_transfers_all_commit(self, bank):
        engine, db, _ = bank
        txns = [txn("transfer", 2 * i, 2 * i + 1, 10) for i in range(8)]
        result = run_batch(engine, txns)
        assert result.stats.committed == 8
        assert result.stats.aborted == 0
        t = db.table("accounts")
        for i in range(8):
            assert t.read(2 * i, "balance") == 990
            assert t.read(2 * i + 1, "balance") == 1010

    def test_conflicting_transfers_min_tid_wins(self, bank):
        engine, db, _ = bank
        txns = [txn("transfer", 0, 1, 10), txn("transfer", 0, 2, 20)]
        result = run_batch(engine, txns)
        assert result.stats.committed == 1
        assert txns[0].status is TxnStatus.COMMITTED
        assert txns[1].status is TxnStatus.ABORTED
        assert "waw" in txns[1].abort_reason
        assert db.table("accounts").read(0, "balance") == 990

    def test_reader_after_writer_reorders_and_commits(self, bank):
        engine, db, _ = bank
        txns = [txn("transfer", 0, 1, 10), txn("audit", 0, 5)]
        result = run_batch(engine, txns)
        # audit (tid 1) read account 0 which tid 0 wrote: RAW, but no
        # WAR -> logical reordering commits it before the transfer.
        assert result.stats.committed == 2
        assert result.serial_order() == [1, 0]

    def test_reader_aborts_without_reordering(self, bank):
        _, db, registry = bank
        engine = LTPGEngine(
            db, registry, LTPGConfig(batch_size=64, logical_reordering=False)
        )
        txns = [txn("transfer", 0, 1, 10), txn("audit", 0, 5)]
        result = run_batch(engine, txns)
        assert txns[1].status is TxnStatus.ABORTED
        assert txns[1].abort_reason == "raw"

    def test_logic_abort_is_final_and_writes_nothing(self, bank):
        engine, db, _ = bank
        txns = [txn("bad", 0)]
        result = run_batch(engine, txns)
        assert txns[0].status is TxnStatus.LOGIC_ABORTED
        assert result.logic_aborted == [txns[0]]
        assert db.table("accounts").read(0, "flags") == 0

    def test_insert_conflict_unique_winner(self, bank):
        engine, db, _ = bank
        txns = [txn("open_account", 500, 1), txn("open_account", 500, 2)]
        result = run_batch(engine, txns)
        assert result.stats.committed == 1
        assert txns[0].status is TxnStatus.COMMITTED
        assert db.table("accounts").read(db.table("accounts").lookup(500), "balance") == 1

    def test_commutative_adds_all_commit_without_delayed_update(self, bank):
        # ADD is a read-modify-write under plain OCC: on the same row
        # only the min TID commits.
        engine, db, _ = bank
        txns = [txn("deposit", 7, 5) for _ in range(4)]
        result = run_batch(engine, txns)
        assert result.stats.committed == 1
        assert db.table("accounts").read(7, "balance") == 1005

    def test_empty_batch(self, bank):
        engine, _, _ = bank
        result = engine.run_batch([])
        assert result.stats.num_txns == 0


class TestDelayedUpdate:
    def engine(self):
        db, registry = build_bank()
        config = LTPGConfig(
            batch_size=64,
            delayed_columns=frozenset({("accounts", "balance")}),
        )
        return LTPGEngine(db, registry, config), db

    def test_hot_adds_all_commit(self):
        engine, db = self.engine()
        txns = [txn("deposit", 7, 5) for _ in range(10)]
        result = run_batch(engine, txns)
        assert result.stats.committed == 10
        assert db.table("accounts").read(7, "balance") == 1050

    def test_aborted_transaction_adds_not_applied(self):
        engine, db = self.engine()
        # transfers write 'balance'... which is delayed-managed: engine
        # must reject non-ADD access to a delayed column.
        txns = [txn("transfer", 0, 1, 10)]
        tids(txns)
        with pytest.raises(TransactionError):
            engine.run_batch(txns)

    def test_mixed_delayed_and_plain_tables(self):
        engine, db = self.engine()
        txns = [txn("deposit", 3, 1), txn("deposit", 3, 2), txn("open_account", 900, 7)]
        result = run_batch(engine, txns)
        assert result.stats.committed == 3
        assert db.table("accounts").read(3, "balance") == 1003


class TestSplitFlags:
    def test_split_avoids_cross_column_conflict(self):
        db, registry = build_bank()
        config = LTPGConfig(
            batch_size=64,
            split_columns=frozenset({("accounts", "flags")}),
            delayed_update=False,
        )
        engine = LTPGEngine(db, registry, config)

        @registry.register("set_flag")
        def set_flag(ctx, a):
            ctx.write("accounts", a, "flags", 1)

        txns = [txn("set_flag", 0), txn("audit", 0, 1)]
        result = run_batch(engine, txns)
        # audit reads balance (group 0); set_flag writes flags (group 1):
        # no conflict even though both touch row 0.
        assert result.stats.committed == 2

    def test_without_split_same_row_conflicts(self):
        db, registry = build_bank()
        config = LTPGConfig(
            batch_size=64, split_flags=False, logical_reordering=False
        )
        engine = LTPGEngine(db, registry, config)

        @registry.register("set_flag")
        def set_flag(ctx, a):
            ctx.write("accounts", a, "flags", 1)

        txns = [txn("set_flag", 0), txn("audit", 0, 1)]
        result = run_batch(engine, txns)
        assert txns[1].status is TxnStatus.ABORTED


class TestDeterminism:
    def test_same_input_same_outcome_and_state(self):
        outcomes = []
        digests = []
        for _ in range(2):
            engine, db, _ = bank_engine()
            txns = [txn("transfer", i % 4, (i + 1) % 4, 1) for i in range(16)]
            result = run_batch(engine, txns)
            outcomes.append(sorted(t.tid for t in result.committed))
            digests.append(db.state_digest())
        assert outcomes[0] == outcomes[1]
        assert digests[0] == digests[1]

    def test_retried_transactions_keep_tids(self, bank):
        engine, _, _ = bank
        scheduler = BatchScheduler(batch_size=8)
        txns = [txn("transfer", 0, 1, 1) for _ in range(8)]
        scheduler.admit(txns)
        batch = scheduler.next_batch()
        result = engine.run_batch(batch)
        aborted_tids = [t.tid for t in result.aborted]
        scheduler.requeue_aborted(result.aborted)
        nxt = scheduler.next_batch()
        assert [t.tid for t in nxt] == sorted(aborted_tids)

    def test_batch_log_records_everything(self, bank):
        engine, _, _ = bank
        txns = [txn("transfer", 0, 1, 1), txn("transfer", 0, 2, 1)]
        run_batch(engine, txns)
        entry = engine.batch_log.batches()[0]
        assert len(entry.records) == 2
        assert entry.committed_tids == [0]
        assert entry.aborted_tids == [1]


class TestSerializability:
    def replay(self, db_before, registry, result):
        """Replay committed transactions serially in witness order."""
        order = result.serial_order()
        by_tid = {t.tid: t for t in result.committed}
        for tid in order:
            t = by_tid[tid]
            ctx = BufferedContext(db_before)
            registry.get(t.procedure_name)(ctx, *t.params)
            apply_local_sets(db_before, ctx.local)
        return db_before

    def test_committed_state_equals_serial_replay(self):
        engine, db, registry = bank_engine()
        before = db.copy()
        txns = [txn("transfer", i % 6, (i + 3) % 6, i + 1) for i in range(24)]
        txns += [txn("audit", 1, 2) for _ in range(4)]
        result = run_batch(engine, txns)
        replayed = self.replay(before, registry, result)
        assert replayed.state_digest() == db.state_digest()

    def test_replay_with_reordered_readers(self):
        engine, db, registry = bank_engine()
        before = db.copy()
        txns = [txn("transfer", 0, 1, 7), txn("audit", 0, 1), txn("audit", 1, 0)]
        result = run_batch(engine, txns)
        assert result.stats.committed == 3
        replayed = self.replay(before, registry, result)
        assert replayed.state_digest() == db.state_digest()


class TestProcessLoop:
    def test_all_transactions_eventually_final(self, bank):
        engine, _, _ = bank
        txns = [txn("transfer", 0, 1, 1) for _ in range(6)]
        stats = engine.run_transactions(txns, max_batches=20)
        assert all(t.is_final for t in txns)
        assert stats.total_committed == 6

    def test_run_stats_aggregation(self, bank):
        engine, _, _ = bank
        txns = [txn("deposit", i, 1) for i in range(10)]
        stats = engine.run_transactions(txns)
        assert stats.total_admitted >= 10
        assert stats.throughput_tps > 0
        assert stats.mean_commit_rate > 0

"""Determinism-linter tests: static AST findings on seeded
nondeterministic procedures, clean verdicts on the real workloads'
procedures, and the dynamic replay twin."""

from __future__ import annotations

import random

from helpers import build_bank, txn

from repro.analysis import (
    lint_procedure,
    lint_registry,
    lint_source,
    replay_procedure,
    replay_transactions,
)
from repro.txn.procedures import ProcedureRegistry


def _kinds(findings) -> set[str]:
    return {f.kind for f in findings}


# ---------------------------------------------------------------------------
# static pass: seeded violations
# ---------------------------------------------------------------------------
def test_random_module_flagged():
    src = """
    def proc(ctx, key):
        import random
        ctx.write("t", key, "col", random.randint(0, 10))
    """
    findings = lint_source("proc", src)
    assert "nondeterministic-module" in _kinds(findings)
    assert all(f.subject == "proc" for f in findings)


def test_random_usage_without_import_flagged():
    src = """
    def proc(ctx, key):
        ctx.write("t", key, "col", random.random())
    """
    assert "nondeterministic-call" in _kinds(lint_source("proc", src))


def test_time_and_uuid_flagged():
    src = """
    def proc(ctx, key):
        from time import time
        import uuid
        ctx.write("t", key, "col", 1)
    """
    findings = lint_source("proc", src)
    assert sum(f.kind == "nondeterministic-module" for f in findings) == 2


def test_datetime_now_flagged():
    src = """
    def proc(ctx, key):
        ctx.write("t", key, "ts", datetime.now().timestamp())
    """
    assert "nondeterministic-call" in _kinds(lint_source("proc", src))


def test_numpy_random_flagged():
    src = """
    def proc(ctx, key):
        ctx.write("t", key, "col", int(np.random.rand() * 10))
    """
    assert "nondeterministic-call" in _kinds(lint_source("proc", src))


def test_id_and_hash_builtins_flagged():
    src = """
    def proc(ctx, key):
        ctx.write("t", key, "a", id(ctx) % 100)
        ctx.write("t", key, "b", hash((key, 1)))
    """
    findings = lint_source("proc", src)
    assert sum(f.kind == "nondeterministic-call" for f in findings) == 2


def test_set_iteration_feeding_writes_flagged():
    src = """
    def proc(ctx, *keys):
        for k in set(keys):
            ctx.write("t", k, "col", 1)
    """
    assert "unordered-iteration" in _kinds(lint_source("proc", src))


def test_set_literal_via_variable_flagged():
    src = """
    def proc(ctx, a, b):
        targets = {a, b}
        for k in targets:
            ctx.add("t", k, "col", 1)
    """
    assert "unordered-iteration" in _kinds(lint_source("proc", src))


def test_set_iteration_without_writes_is_clean():
    src = """
    def proc(ctx, *keys):
        total = 0
        for k in set(keys):
            total += ctx.read("t", k, "col")
        ctx.write("t", keys[0], "sum", total)
    """
    # Reading in unordered order is commutative here; only
    # iteration that feeds writes is flagged.
    assert "unordered-iteration" not in _kinds(lint_source("proc", src))


def test_list_iteration_feeding_writes_is_clean():
    src = """
    def proc(ctx, *keys):
        for k in sorted(keys):
            ctx.write("t", k, "col", 1)
    """
    assert lint_source("proc", src) == []


def test_unparseable_source_reported():
    assert _kinds(lint_source("proc", "def proc(:")) == {"unparseable"}


def test_unlintable_builtin_reported():
    assert _kinds(lint_procedure("builtin", len)) == {"unlintable"}


# ---------------------------------------------------------------------------
# static pass: real registries are clean
# ---------------------------------------------------------------------------
def test_bank_registry_is_clean():
    _, registry = build_bank()
    assert lint_registry(registry) == []


def test_seeded_registry_procedure_detected():
    registry = ProcedureRegistry()

    @registry.register("roulette")
    def roulette(ctx, key):
        ctx.write("accounts", key, "balance", random.randint(0, 100))

    findings = lint_registry(registry)
    assert findings and all(f.subject == "roulette" for f in findings)
    assert "nondeterministic-module" in _kinds(findings) or (
        "nondeterministic-call" in _kinds(findings)
    )


# ---------------------------------------------------------------------------
# dynamic twin
# ---------------------------------------------------------------------------
def test_replay_clean_procedure_no_findings():
    db, registry = build_bank()
    assert replay_procedure(db, "transfer", registry.get("transfer"), (1, 2, 5)) == []


def test_replay_detects_divergence():
    db, registry = build_bank()
    rng = random.Random(3)

    @registry.register("flaky")
    def flaky(ctx, key):
        ctx.write("accounts", rng.randrange(16), "balance", 1)

    findings = replay_procedure(db, "flaky", registry.get("flaky"), (0,))
    assert _kinds(findings) == {"replay-divergence"}
    assert findings[0].subject == "flaky"


def test_replay_detects_outcome_divergence():
    db, registry = build_bank()
    state = {"n": 0}

    @registry.register("sometimes")
    def sometimes(ctx, key):
        state["n"] += 1
        if state["n"] % 2 == 0:
            ctx.abort("every other run")
        ctx.write("accounts", key, "balance", 1)

    findings = replay_procedure(db, "sometimes", registry.get("sometimes"), (0,))
    assert _kinds(findings) == {"replay-divergence"}
    assert "outcome" in findings[0].message


def test_replay_transactions_samples_per_procedure():
    db, registry = build_bank()
    batch = [txn("transfer", 1, 2, 5), txn("deposit", 3, 7),
             txn("transfer", 4, 5, 1), txn("audit", 1, 2)]
    assert replay_transactions(db, registry, batch) == []


def test_replay_logic_abort_is_deterministic():
    """A procedure that always rolls back replays identically — stable
    aborts are not divergence."""
    db, registry = build_bank()
    assert replay_procedure(db, "bad", registry.get("bad"), (1,)) == []


# ---------------------------------------------------------------------------
# Registry scan covers batched twins
# ---------------------------------------------------------------------------
def _clean_scalar(ctx, key):
    ctx.write("t", key, "a", 1)


def _random_twin(bctx, params):
    import random as _random

    return _random.random()


def test_lint_registry_walks_batched_twins():
    registry = ProcedureRegistry()
    registry.register("noisy", _clean_scalar)
    registry.register_batched("noisy", _random_twin)
    findings = lint_registry(registry)
    batched = [f for f in findings if f.subject == "noisy[batched]"]
    assert batched, "batched twin was not scanned"
    assert any(f.kind == "nondeterministic-module" for f in batched)
    # the scalar-only scan remains available (and is clean here)
    assert lint_registry(registry, include_batched=False) == []


def test_lint_registry_unwraps_partial_bound_twins():
    import functools

    registry = ProcedureRegistry()
    registry.register("cfg", _clean_scalar)
    # tpcc binds its scale through functools.partial at registration;
    # the scan must see through the wrapper to the twin's source
    registry.register_batched("cfg", functools.partial(_random_twin))
    findings = lint_registry(registry)
    assert any(
        f.subject == "cfg[batched]"
        and f.kind == "nondeterministic-module"
        for f in findings
    )

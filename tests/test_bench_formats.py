"""Rendering of every bench result object (regression guard for the
CLI output the EXPERIMENTS.md tables are diffed against)."""

from __future__ import annotations

import pytest

from repro.bench.ablations import AblationResult
from repro.bench.calibration import CalibrationResult
from repro.bench.fig6 import Fig6aResult, Fig6bResult
from repro.bench.fig7 import Fig7Result
from repro.bench.fullmix import FullMixResult
from repro.bench.sweep import SweepResult
from repro.bench.table2 import Table2Result
from repro.bench.table3 import Table3Result
from repro.bench.table4 import Table4Result
from repro.bench.table5 import Table5Result
from repro.bench.table6 import Table6Cell, Table6Result
from repro.bench.table8 import Table8Result
from repro.bench.table9 import Table9Result


class TestTableFormats:
    def test_table2_partial_configs(self):
        r = Table2Result()
        r.mtps[("ltpg", 50, 8)] = 18.4
        r.mtps[("gacco", 50, 8)] = 16.1
        text = r.format()
        assert "50-8" in text and "ltpg" in text and "18.4" in text
        assert "100-8" not in text  # absent configs stay out

    def test_table3(self):
        r = Table3Result()
        r.mtps[(256, 50, 8)] = 1.5
        text = r.format()
        assert "2^8" in text

    def test_table4(self):
        r = Table4Result()
        r.cells[("ltpg", 8, 8192)] = (100.0, 20.0)
        r.cells[("gacco", 8, 8192)] = (200.0, 50.0)
        text = r.format()
        assert "100, 20" in text
        assert "8/8192" in text

    def test_table5(self):
        r = Table5Result()
        r.rwset_us[1024] = 9.5
        assert "9.5" in r.format()

    def test_table6(self):
        r = Table6Result()
        r.cells[(8, 4096, True)] = Table6Cell(100, 60, 40, 0.8, 0.9, 0.7)
        r.cells[(8, 4096, False)] = Table6Cell(50, 49, 1, 0.4, 0.9, 0.01)
        text = r.format()
        assert "yes" in text and "no" in text
        assert "8/4096" in text

    def test_table8(self):
        r = Table8Result()
        r.pct[8] = (1.2, 98.8)
        text = r.format()
        assert "1.200" in text and "98.800" in text

    def test_table9(self):
        r = Table9Result()
        r.phases[32] = {"execute": 45_000.0, "conflict": 4_000.0, "writeback": 10_000.0}
        r.modes[32] = "zero_copy"
        text = r.format()
        assert "zero_copy" in text and "45" in text

    def test_fig6(self):
        a = Fig6aResult()
        a.commit_rate[256] = 0.9
        a.latency_us[256] = 77.0
        assert "77" in a.format()
        b = Fig6bResult()
        b.mtps["baseline"] = 2.0
        b.mtps["+high-contention"] = 4.0
        text = b.format()
        assert "2.00x" in text

    def test_fig7(self):
        r = Fig7Result()
        r.mtps[("a", 1024, 10_000)] = 3.0
        text = r.format()
        assert "10,000 records" in text and "A" in text

    def test_fullmix(self):
        r = FullMixResult(mtps=5.0, commit_rate=0.7, p50_us=90.0, p99_us=120.0)
        r.per_proc_rate["neworder"] = 0.6
        r.retry_histogram[1] = 100
        text = r.format()
        assert "neworder commit %" in text
        assert "attempt 1" in text

    def test_sweep(self):
        r = SweepResult()
        r.cells[(0.5, True)] = (7.0, 0.65)
        r.cells[(0.5, False)] = (2.0, 0.23)
        text = r.format()
        assert "0.50" in text

    def test_ablation(self):
        r = AblationResult("T", "metric")
        r.rows["x"] = (1.0, 0.5, 3.0)
        text = r.format()
        assert "metric" in text and "50.0" in text

    def test_calibration_worst_ratio(self):
        r = CalibrationResult()
        r.record("a", 2.0, 1.0)
        r.record("b", 1.0, 1.0)
        assert r.worst_ratio() == pytest.approx(2.0)
        assert "2.00x" in r.format()
        r.record("zero", 0.0, 1.0)
        assert r.worst_ratio() == float("inf")

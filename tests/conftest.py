"""Shared fixtures; the callable helpers live in helpers.py."""

from __future__ import annotations

import pytest

from helpers import bank_engine


@pytest.fixture
def bank():
    """(engine, db, registry) over a fresh 64-account bank."""
    return bank_engine()


@pytest.fixture
def tiny_tpcc():
    """A 2-warehouse, small-item TPC-C instance (fresh per test)."""
    from repro.workloads.tpcc import build_tpcc

    return build_tpcc(warehouses=2, num_items=2000, seed=11)

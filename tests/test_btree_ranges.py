"""B-tree index and the range-query extension (phantom-safe scans)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import build_bank, txn
from repro.core import LTPGConfig, LTPGEngine
from repro.errors import DuplicateKey, KeyNotFound, StorageError
from repro.storage import Table, make_schema
from repro.storage.btree import BTreeIndex
from repro.txn import BufferedContext, TxnStatus
from repro.workloads.ycsb import build_ycsb


class TestBTreeBasics:
    def test_insert_and_lookup(self):
        tree = BTreeIndex(order=4)
        for k in [5, 1, 9, 3, 7]:
            tree.insert(k, k * 10)
        assert tree.lookup(3) == 30
        assert tree.lookup(9) == 90
        assert len(tree) == 5

    def test_duplicate_rejected(self):
        tree = BTreeIndex(order=4)
        tree.insert(1, 1)
        with pytest.raises(DuplicateKey):
            tree.insert(1, 2)

    def test_missing_key(self):
        tree = BTreeIndex()
        with pytest.raises(KeyNotFound):
            tree.lookup(42)
        assert tree.get(42) is None
        assert 42 not in tree

    def test_splits_grow_height(self):
        tree = BTreeIndex(order=4)
        for k in range(100):
            tree.insert(k, k)
        assert tree.height > 1
        for k in range(100):
            assert tree.lookup(k) == k

    def test_range_inclusive(self):
        tree = BTreeIndex(order=4)
        for k in range(0, 40, 2):
            tree.insert(k, k)
        got = [k for k, _ in tree.range(10, 20)]
        assert got == [10, 12, 14, 16, 18, 20]

    def test_range_empty_and_inverted(self):
        tree = BTreeIndex(order=4)
        tree.insert(5, 5)
        assert list(tree.range(6, 9)) == []
        assert list(tree.range(9, 6)) == []

    def test_min_max(self):
        tree = BTreeIndex(order=4)
        for k in [17, 3, 99]:
            tree.insert(k, k)
        assert tree.min_key() == 3
        assert tree.max_key() == 99

    def test_empty_min_max(self):
        with pytest.raises(KeyNotFound):
            BTreeIndex().min_key()

    def test_items_sorted(self):
        tree = BTreeIndex(order=4)
        keys = [9, 2, 7, 4, 11, 0]
        for k in keys:
            tree.insert(k, k)
        assert [k for k, _ in tree.items()] == sorted(keys)

    def test_copy_independent(self):
        tree = BTreeIndex(order=4)
        tree.insert(1, 1)
        clone = tree.copy()
        clone.insert(2, 2)
        assert 2 not in tree

    def test_invalid_order(self):
        with pytest.raises(StorageError):
            BTreeIndex(order=2)

    @given(st.lists(st.integers(-(10**6), 10**6), unique=True, max_size=300))
    @settings(max_examples=30)
    def test_against_sorted_dict_oracle(self, keys):
        tree = BTreeIndex(order=4)
        for i, k in enumerate(keys):
            tree.insert(k, i)
        assert len(tree) == len(keys)
        model = dict(zip(keys, range(len(keys))))
        for k, v in model.items():
            assert tree.lookup(k) == v
        assert [k for k, _ in tree.items()] == sorted(model)
        if keys:
            lo, hi = min(keys), max(keys)
            mid_lo, mid_hi = sorted([keys[0], keys[-1]])
            expected = sorted(k for k in model if mid_lo <= k <= mid_hi)
            assert [k for k, _ in tree.range(mid_lo, mid_hi)] == expected


class TestTableOrderedIndex:
    def test_range_rows(self):
        table = Table(make_schema("t", "id", "v"))
        for k in [10, 30, 20]:
            table.insert(k, {"v": k})
        table.add_ordered_index()
        assert [k for k, _ in table.range_rows(10, 25)] == [10, 20]

    def test_index_backfills_and_tracks_inserts(self):
        table = Table(make_schema("t", "id", "v"))
        table.insert(5)
        table.add_ordered_index()
        table.insert(3)
        assert [k for k, _ in table.range_rows(0, 10)] == [3, 5]

    def test_range_without_index_rejected(self):
        table = Table(make_schema("t", "id", "v"))
        with pytest.raises(StorageError):
            table.range_rows(0, 1)

    def test_double_index_rejected(self):
        table = Table(make_schema("t", "id", "v"))
        table.add_ordered_index()
        with pytest.raises(StorageError):
            table.add_ordered_index()

    def test_copy_carries_ordered_index(self):
        table = Table(make_schema("t", "id", "v"))
        table.insert(1)
        table.add_ordered_index()
        clone = table.copy()
        clone.insert(2)
        assert len(clone.ordered) == 2
        assert len(table.ordered) == 1

    def test_bulk_load_populates_existing_index(self):
        table = Table(make_schema("t", "id", "v"))
        table.add_ordered_index()
        table.bulk_load(np.array([4, 7, 9]), {})
        assert [k for k, _ in table.range_rows(0, 10)] == [4, 7, 9]


def ranged_bank():
    """Bank with an ordered index and a range-sum procedure."""
    db, registry = build_bank(accounts=32)
    db.table("accounts").add_ordered_index()

    @registry.register("range_sum")
    def range_sum(ctx, lo, hi):
        ctx.range_read("accounts", lo, hi, "balance")

    return db, registry


class TestRangePhantoms:
    def run_batch(self, db, registry, txns, reorder=True):
        engine = LTPGEngine(
            db, registry,
            LTPGConfig(batch_size=64, logical_reordering=reorder),
        )
        for i, t in enumerate(txns):
            t.tid = i
        return engine.run_batch(txns)

    def test_range_read_returns_values(self):
        db, registry = ranged_bank()
        ctx = BufferedContext(db)
        values = ctx.range_read("accounts", 0, 4, "balance")
        assert values == [1000] * 5
        assert ctx.ranges == [(0, 0, 4)]

    def test_range_read_sees_own_writes(self):
        db, registry = ranged_bank()
        ctx = BufferedContext(db)
        ctx.write("accounts", 2, "balance", 7)
        assert ctx.range_read("accounts", 0, 4, "balance")[2] == 7

    def test_earlier_insert_aborts_range_reader_without_reordering(self):
        db, registry = ranged_bank()
        txns = [txn("open_account", 40, 1), txn("range_sum", 35, 45)]
        result = self.run_batch(db, registry, txns, reorder=False)
        assert txns[0].status is TxnStatus.COMMITTED
        assert txns[1].status is TxnStatus.ABORTED
        assert "raw" in txns[1].abort_reason

    def test_reordering_serializes_range_reader_before_inserter(self):
        # RAW-only reader: with logical reordering it commits, ordered
        # *before* the inserter (its snapshot scan is then consistent).
        db, registry = ranged_bank()
        txns = [txn("open_account", 40, 1), txn("range_sum", 35, 45)]
        result = self.run_batch(db, registry, txns, reorder=True)
        assert result.stats.committed == 2

    def test_later_insert_into_read_range_both_commit(self):
        # Reader (tid 0) scans; inserter (tid 1) adds a key in range:
        # serial order reader-then-inserter is consistent, both commit.
        db, registry = ranged_bank()
        txns = [txn("range_sum", 35, 45), txn("open_account", 40, 1)]
        result = self.run_batch(db, registry, txns)
        assert result.stats.committed == 2

    def test_phantom_war_marks_later_inserter(self):
        # insert@40 (tid 0), scan 35-45 (tid 1), insert@42 (tid 2).
        # Without reordering: the reader aborts on its RAW; the later
        # inserter carries a WAR flag (harmless alone) and commits.
        db, registry = ranged_bank()
        txns = [
            txn("open_account", 40, 1),
            txn("range_sum", 35, 45),
            txn("open_account", 42, 1),
        ]
        result = self.run_batch(db, registry, txns, reorder=False)
        assert txns[0].status is TxnStatus.COMMITTED
        assert txns[1].status is TxnStatus.ABORTED
        assert txns[2].status is TxnStatus.COMMITTED

        # With reordering all three commit: the reader serializes first.
        db2, registry2 = ranged_bank()
        txns2 = [
            txn("open_account", 40, 1),
            txn("range_sum", 35, 45),
            txn("open_account", 42, 1),
        ]
        result2 = self.run_batch(db2, registry2, txns2, reorder=True)
        assert result2.stats.committed == 3

    def test_insert_outside_range_is_no_conflict(self):
        db, registry = ranged_bank()
        txns = [txn("open_account", 100, 1), txn("range_sum", 0, 10)]
        result = self.run_batch(db, registry, txns)
        assert result.stats.committed == 2

    def test_retried_range_reader_sees_inserted_row(self):
        db, registry = ranged_bank()
        txns = [txn("open_account", 5000, 1), txn("range_sum", 4990, 5010)]
        engine = LTPGEngine(
            db, registry,
            LTPGConfig(batch_size=64, logical_reordering=False),
        )
        for i, t in enumerate(txns):
            t.tid = i
        result = engine.run_batch(txns)
        assert txns[1].status is TxnStatus.ABORTED
        retry = engine.run_batch(result.aborted)
        assert retry.stats.committed == 1
        # and the re-executed scan now observes the phantom row
        ctx = BufferedContext(db)
        assert len(ctx.range_read("accounts", 4990, 5010, "balance")) == 1


class TestYcsbBtreeScans:
    def test_workload_e_with_btree(self):
        db, registry, gen = build_ycsb(
            2000, workload="e", seed=3, btree_scans=True
        )
        from repro.txn import assign_tids

        engine = LTPGEngine(db, registry, LTPGConfig(batch_size=64))
        batch = gen.make_batch(64)
        assign_tids(batch, 0)
        result = engine.run_batch(batch)
        # scans + unique-key inserts: phantom aborts only where an
        # insert landed inside a concurrent scan's range (rare here)
        assert result.stats.committed > 48
        assert engine.database.table("usertable").ordered is not None

"""Full-snapshot synchronization intervals and remote payments."""

from __future__ import annotations

import pytest

from helpers import build_bank, txn
from repro.core import LTPGConfig, LTPGEngine
from repro.workloads.tpcc import TpccGenerator, TpccMix, TpccScale


class TestFullSyncInterval:
    def run_batches(self, interval):
        db, registry = build_bank(accounts=512)
        config = LTPGConfig(batch_size=32, full_sync_interval=interval)
        engine = LTPGEngine(db, registry, config)
        transfers = []
        tid = 0
        for _ in range(4):
            batch = [txn("deposit", i, 1) for i in range(32)]
            for t in batch:
                t.tid = tid
                tid += 1
            result = engine.run_batch(batch)
            transfers.append(result.stats.transfer_ns)
        return transfers

    def test_interval_adds_periodic_transfer(self):
        plain = self.run_batches(None)
        synced = self.run_batches(2)
        # batches 2 and 4 (indices 1 and 3) carry the full-snapshot copy
        # (at least one extra DMA latency on top of the rwset shipping)
        assert synced[1] > plain[1] + 5_000
        assert synced[3] > plain[3] + 5_000
        assert synced[0] == pytest.approx(plain[0])
        assert synced[2] == pytest.approx(plain[2])

    def test_interval_one_syncs_every_batch(self):
        every = self.run_batches(1)
        plain = self.run_batches(None)
        assert all(e > p for e, p in zip(every, plain))


class TestRemotePayments:
    def make_gen(self, prob):
        scale = TpccScale(warehouses=4, num_items=1000)
        return TpccGenerator(
            scale,
            mix=TpccMix.neworder_percentage(0),
            seed=9,
            remote_payment_prob=prob,
        ), scale

    def customer_warehouse(self, scale, c_key):
        from repro.workloads.tpcc.schema import (
            CUSTOMERS_PER_DISTRICT,
            DISTRICTS_PER_WAREHOUSE,
        )

        return c_key // CUSTOMERS_PER_DISTRICT // DISTRICTS_PER_WAREHOUSE

    def test_zero_prob_all_local(self):
        gen, scale = self.make_gen(0.0)
        for t in gen.make_batch(100):
            w, _, c_key = t.params[0], t.params[1], t.params[2]
            assert self.customer_warehouse(scale, c_key) == w

    def test_default_prob_produces_remote(self):
        gen, scale = self.make_gen(0.5)
        remote = 0
        batch = gen.make_batch(300)
        for t in batch:
            w, c_key = t.params[0], t.params[2]
            if self.customer_warehouse(scale, c_key) != w:
                remote += 1
        assert 0.3 < remote / len(batch) < 0.7

    def test_single_warehouse_never_remote(self):
        scale = TpccScale(warehouses=1, num_items=1000)
        gen = TpccGenerator(
            scale, mix=TpccMix.neworder_percentage(0), seed=9,
            remote_payment_prob=1.0,
        )
        for t in gen.make_batch(50):
            assert self.customer_warehouse(scale, t.params[2]) == 0

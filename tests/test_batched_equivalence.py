"""Differential tests for the batched executor (``LTPGConfig.batched_exec``).

Three implementations of the execute phase coexist: the retained
per-transaction reference loop, the columnar op-collection path, and the
batched executor (one vectorized ``BatchProcedure`` invocation per
procedure group).  They must be observationally identical — statuses,
abort reasons, per-transaction op streams (``txn.ops.raw``), simulated
phase times, and the final database digest — because the wall-clock
numbers in ``BENCH_wallclock.json`` claim the batched path changes host
time and nothing else.

Each test runs identical batch specs through all three paths and
compares the full observable surface byte for byte.
"""

from __future__ import annotations

import pytest

from helpers import build_bank
from repro.core import LTPGConfig, LTPGEngine
from repro.errors import TransactionError
from repro.txn import Transaction
from repro.workloads.smallbank import build_smallbank
from repro.workloads.tpcc import DELAYED_COLUMNS, SPLIT_COLUMNS, TpccMix, build_tpcc
from repro.workloads.ycsb import build_ycsb
from repro.workloads.ycsb.generator import ycsb_delayed_columns

pytestmark = pytest.mark.batched

#: All five TPC-C procedures, so delivery/orderstatus/stocklevel twins
#: (secondary-index walks, range-ish reads, fallback lanes) all run.
FULL_MIX = TpccMix(
    neworder=0.4, payment=0.3, orderstatus=0.1, stocklevel=0.1, delivery=0.1
)


def _observe(engine, batches):
    """Run ``batches`` (lists of (name, params) specs) and capture every
    path-sensitive observable."""
    out = []
    for specs in batches:
        batch = [Transaction(n, p, tid=i) for i, (n, p) in enumerate(specs)]
        result = engine.run_batch(batch)
        out.append(
            {
                "committed": result.stats.committed,
                "aborted": result.stats.aborted,
                "logic_aborted": result.stats.logic_aborted,
                "statuses": [t.status for t in batch],
                "reasons": [t.abort_reason for t in batch],
                "ops": [t.ops.raw for t in batch],
                "phase_ns": dict(result.stats.phase_ns),
                "rwset_ns": result.stats.rwset_ns,
                "abort_reasons": dict(result.stats.abort_reasons),
                "by_proc": dict(result.stats.committed_by_proc),
            }
        )
    out.append(engine.database.state_digest())
    return out


def _mode_config(mode: str, **overrides) -> dict:
    return dict(
        columnar_ops=(mode != "reference"),
        batched_exec=(mode == "batched"),
        **overrides,
    )


def _three_way(build, batches, **overrides):
    """Assert reference == columnar == batched on fresh engines."""
    runs = {}
    for mode in ("reference", "columnar", "batched"):
        engine = build(_mode_config(mode, **overrides))
        runs[mode] = _observe(engine, batches)
    assert runs["columnar"] == runs["reference"]
    assert runs["batched"] == runs["reference"]


# ---------------------------------------------------------------------------
# TPC-C: full procedure mix with the paper's optimizations on
# ---------------------------------------------------------------------------
def test_tpcc_full_mix_three_way_identical():
    def make():
        _, _, gen = build_tpcc(warehouses=2, num_items=2000, mix=FULL_MIX, seed=7)
        return [
            [(t.procedure_name, t.params) for t in gen.make_batch(256)]
            for _ in range(3)
        ]

    def build(mode_kwargs):
        db, registry, _ = build_tpcc(
            warehouses=2, num_items=2000, mix=FULL_MIX, seed=7
        )
        config = LTPGConfig(
            batch_size=256,
            delayed_update=True,
            delayed_columns=DELAYED_COLUMNS,
            split_flags=True,
            split_columns=SPLIT_COLUMNS,
            **mode_kwargs,
        )
        return LTPGEngine(db, registry, config)

    _three_way(build, make())


# ---------------------------------------------------------------------------
# YCSB: RMW hazards, delayed deltas, B-tree range scans
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "ycsb_kwargs, delayed",
    [
        (dict(num_records=2000, workload="a", zipf_alpha=2.5, seed=11), True),
        (
            dict(
                num_records=2000,
                workload="a",
                zipf_alpha=1.2,
                seed=5,
                commutative_updates=False,
            ),
            False,
        ),
        (
            dict(
                num_records=2000,
                workload="e",
                zipf_alpha=0.9,
                seed=11,
                btree_scans=True,
            ),
            False,
        ),
    ],
    ids=["a-zipf25-delayed", "a-ablation-rmw", "e-btree-ranges"],
)
def test_ycsb_three_way_identical(ycsb_kwargs, delayed):
    _, _, gen = build_ycsb(**ycsb_kwargs)
    batches = [
        [(t.procedure_name, t.params) for t in gen.make_batch(256)]
        for _ in range(3)
    ]

    def build(mode_kwargs):
        db, registry, _ = build_ycsb(**ycsb_kwargs)
        config = LTPGConfig(
            batch_size=256,
            delayed_update=delayed,
            delayed_columns=ycsb_delayed_columns() if delayed else frozenset(),
            **mode_kwargs,
        )
        return LTPGEngine(db, registry, config)

    _three_way(build, batches)


# ---------------------------------------------------------------------------
# SmallBank: six procedures, all with never-falling-back twins
# ---------------------------------------------------------------------------
def test_smallbank_three_way_identical():
    _, _, gen = build_smallbank(num_accounts=500, zipf_alpha=1.2, seed=3)
    batches = [
        [(t.procedure_name, t.params) for t in gen.make_batch(256)]
        for _ in range(3)
    ]

    def build(mode_kwargs):
        db, registry, _ = build_smallbank(
            num_accounts=500, zipf_alpha=1.2, seed=3
        )
        return LTPGEngine(db, registry, LTPGConfig(batch_size=256, **mode_kwargs))

    _three_way(build, batches)


# ---------------------------------------------------------------------------
# Mixed registry: some procedures batched, some scalar-only, plus
# in-twin fall_back lanes — the three execution routes inside one batch
# ---------------------------------------------------------------------------
def _mixed_bank_registry():
    db, registry = build_bank(accounts=32)

    @registry.register_batched("deposit")
    def deposit_b(bctx, p):
        lanes = bctx.active_lanes()
        keys = p.column(0)[lanes]
        amounts = p.column(1)[lanes]
        rows, found = bctx.rows_for_keys("accounts", lanes, keys)
        bctx.add("accounts", lanes[found], rows[found], "balance", amounts[found])

    @registry.register_batched("transfer")
    def transfer_b(bctx, p):
        lanes = bctx.active_lanes()
        # send odd lanes to the scalar re-run on purpose: the test wants
        # vectorized, fallback, and scalar-only lanes in the same batch
        odd = lanes % 2 == 1
        bctx.fall_back(lanes[odd])
        lanes = lanes[~odd]
        a = p.column(0)[lanes]
        b = p.column(1)[lanes]
        amount = p.column(2)[lanes]
        bal_a, rows_a, found = bctx.read_keys("accounts", lanes, a, "balance")
        lanes, b, amount = lanes[found], b[found], amount[found]
        bal_b, rows_b, found_b = bctx.read_keys("accounts", lanes, b, "balance")
        lanes = lanes[found_b]
        bctx.write(
            "accounts", lanes, rows_a[found_b], "balance",
            bal_a[found_b] - amount[found_b],
        )
        bctx.write("accounts", lanes, rows_b, "balance", bal_b + amount[found_b])

    return db, registry


def test_mixed_batched_and_scalar_procedures_identical():
    specs = []
    for i in range(48):
        specs.append(("transfer", (i % 32, (i + 7) % 32, 1 + i % 5)))
        specs.append(("deposit", (i % 32, 2 + i % 3)))
        # audit/open_account/bad have no batched twins: whole groups run
        # through the engine's automatic per-transaction fallback
        specs.append(("audit", (i % 32, (i + 3) % 32)))
        if i % 11 == 0:
            specs.append(("open_account", (100 + i, 9)))
        if i % 13 == 0:
            specs.append(("bad", (i % 32,)))
    batches = [specs, specs[::-1]]

    def build(mode_kwargs):
        db, registry = _mixed_bank_registry()
        return LTPGEngine(db, registry, LTPGConfig(batch_size=256, **mode_kwargs))

    _three_way(build, batches)


# ---------------------------------------------------------------------------
# Unknown procedure names: clear error, no cache poisoning
# ---------------------------------------------------------------------------
def test_unknown_procedure_clear_error_and_clean_cache():
    db, registry = build_bank(accounts=8)
    engine = LTPGEngine(db, registry, LTPGConfig(batch_size=8))

    with pytest.raises(TransactionError) as excinfo:
        engine.run_batch([Transaction("no_such_proc", (1,), tid=0)])
    message = str(excinfo.value)
    assert "no_such_proc" in message
    assert "registered procedures" in message
    assert "deposit" in message  # tells the user what *is* available

    # the failed lookup must not have poisoned the procedure cache:
    # a valid batch still executes on the same engine...
    result = engine.run_batch([Transaction("deposit", (1, 5), tid=0)])
    assert result.stats.committed == 1

    # ...and the unknown name keeps raising the same clear error
    with pytest.raises(TransactionError, match="no_such_proc"):
        engine.run_batch([Transaction("no_such_proc", (1,), tid=1)])


def test_unknown_procedure_same_error_in_batched_mode():
    db, registry = build_bank(accounts=8)
    engine = LTPGEngine(
        db, registry,
        LTPGConfig(batch_size=8, columnar_ops=True, batched_exec=True),
    )
    with pytest.raises(TransactionError, match="no_such_proc"):
        engine.run_batch([Transaction("no_such_proc", (1,), tid=0)])
    result = engine.run_batch([Transaction("deposit", (1, 5), tid=0)])
    assert result.stats.committed == 1

"""Lock-step SIMT interpreter: masking, divergence, atomics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.gpusim import AtomicArray, Warp


def run(program, memory=None, width=32, active=None):
    warp = Warp(width)
    return warp.run(program, memory=memory, active=active)


class TestBasics:
    def test_const_and_store(self):
        mem = {"out": np.zeros(32, dtype=np.int64)}
        run(
            [
                ("lane", "i"),
                ("const", "v", 7),
                ("st", "out", "i", "v"),
            ],
            mem,
        )
        assert (mem["out"] == 7).all()

    def test_lane_ids(self):
        mem = {"out": np.zeros(32, dtype=np.int64)}
        run([("lane", "i"), ("st", "out", "i", "i")], mem)
        assert list(mem["out"]) == list(range(32))

    def test_arithmetic(self):
        mem = {"out": np.zeros(8, dtype=np.int64)}
        run(
            [
                ("lane", "i"),
                ("const", "two", 2),
                ("mul", "v", "i", "two"),
                ("st", "out", "i", "v"),
            ],
            mem,
            width=8,
        )
        assert list(mem["out"]) == [0, 2, 4, 6, 8, 10, 12, 14]

    def test_load(self):
        mem = {
            "inp": np.arange(10, 42, dtype=np.int64),
            "out": np.zeros(32, dtype=np.int64),
        }
        run(
            [("lane", "i"), ("ld", "v", "inp", "i"), ("st", "out", "i", "v")],
            mem,
        )
        assert (mem["out"] == mem["inp"]).all()

    def test_unknown_instruction(self):
        with pytest.raises(DeviceError):
            run([("frobnicate",)])

    def test_unknown_memory(self):
        with pytest.raises(DeviceError):
            run([("lane", "i"), ("ld", "v", "nope", "i")])


class TestDivergence:
    def test_uniform_branch_no_divergence(self):
        stats = run(
            [
                ("lane", "i"),
                ("const", "k", 100),
                ("iflt", "i", "k"),  # all lanes take it
                ("endif",),
            ]
        )
        assert stats.divergent_branches == 0

    def test_split_branch_diverges_once(self):
        mem = {"out": np.zeros(32, dtype=np.int64)}
        stats = run(
            [
                ("lane", "i"),
                ("const", "k", 16),
                ("const", "one", 1),
                ("const", "two", 2),
                ("iflt", "i", "k"),
                ("st", "out", "i", "one"),
                ("else",),
                ("st", "out", "i", "two"),
                ("endif",),
            ],
            mem,
        )
        assert stats.divergent_branches == 1
        assert (mem["out"][:16] == 1).all()
        assert (mem["out"][16:] == 2).all()

    def test_nested_if(self):
        mem = {"out": np.zeros(32, dtype=np.int64)}
        run(
            [
                ("lane", "i"),
                ("const", "k16", 16),
                ("const", "k8", 8),
                ("const", "v", 9),
                ("iflt", "i", "k16"),
                ("iflt", "i", "k8"),
                ("st", "out", "i", "v"),
                ("endif",),
                ("endif",),
            ],
            mem,
        )
        assert (mem["out"][:8] == 9).all()
        assert (mem["out"][8:] == 0).all()

    def test_unbalanced_if_rejected(self):
        with pytest.raises(DeviceError):
            run([("lane", "i"), ("iflt", "i", "i")])

    def test_else_without_if_rejected(self):
        with pytest.raises(DeviceError):
            run([("else",)])

    def test_masked_lanes_do_not_execute(self):
        mem = {"out": np.zeros(32, dtype=np.int64)}
        active = np.zeros(32, dtype=bool)
        active[:4] = True
        run(
            [("lane", "i"), ("const", "v", 5), ("st", "out", "i", "v")],
            mem,
            active=active,
        )
        assert (mem["out"][:4] == 5).all()
        assert (mem["out"][4:] == 0).all()


class TestWarpAtomics:
    def test_atomic_add_serializes_correctly(self):
        mem = {"counter": AtomicArray(1)}
        run(
            [
                ("const", "addr", 0),
                ("const", "one", 1),
                ("atomic_add", "counter", "addr", "one", "old"),
            ],
            mem,
        )
        assert mem["counter"].data[0] == 32

    def test_atomic_min_contention_stats(self):
        mem = {"log": AtomicArray(1, fill=10_000)}
        stats = run(
            [
                ("lane", "i"),
                ("const", "addr", 0),
                ("atomic_min", "log", "addr", "i", "old"),
            ],
            mem,
        )
        assert mem["log"].data[0] == 0
        assert stats.atomic_max_chain == 32
        assert stats.atomic_serialized == 31

    def test_atomic_distinct_addresses_no_chain(self):
        mem = {"log": AtomicArray(32, fill=99)}
        stats = run(
            [
                ("lane", "i"),
                ("atomic_min", "log", "i", "i", "old"),
            ],
            mem,
        )
        assert stats.atomic_max_chain == 1
        assert stats.atomic_serialized == 0
        assert (mem["log"].data == np.arange(32)).all()

    def test_atomic_old_values_ascending_lane_order(self):
        mem = {"log": AtomicArray(1, fill=100)}
        out = np.zeros(4, dtype=np.int64)
        warp = Warp(4)
        warp.run(
            [
                ("lane", "i"),
                ("const", "addr", 0),
                ("atomic_min", "log", "addr", "i", "old"),
                ("st", "out", "i", "old"),
            ],
            {"log": mem["log"], "out": out},
        )
        assert list(out) == [100, 0, 0, 0]

"""Property tests for batch-forming policies (Hypothesis, virtual clock).

Three laws, checked against randomly generated arrival traces driven
through the *real* orchestrator + virtual-time loop (no mocked queues):

* **partition** — every admitted request lands in exactly one batch;
* **capacity** — no cut batch exceeds the policy's capacity;
* **deadline bound** — under a deadline/hybrid policy with a
  zero-latency engine, no request waits in the forming queue past
  ``max_wait_ns``.  (Zero engine latency makes the bound exact: the
  loop is always free to cut the instant a deadline expires.  With
  nonzero latency the bound loosens by queueing delay — that regime is
  covered by the capacity/partition laws, which hold regardless.)

Plus pure-function properties of the policy objects themselves, which
need no event loop at all.
"""

from __future__ import annotations

import pytest
from helpers import StubEngine
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.clock import run_simulation
from repro.serve.orchestrator import Orchestrator
from repro.serve.policies import (
    DeadlinePolicy,
    HybridPolicy,
    QueueView,
    SizePolicy,
    make_policy,
)

pytestmark = pytest.mark.serve

# -- pure policy properties (no loop) -----------------------------------

queue_views = st.builds(
    QueueView,
    eligible=st.integers(min_value=0, max_value=64),
    oldest_enqueue_ns=st.one_of(
        st.none(), st.integers(min_value=0, max_value=10**9)
    ),
    now_ns=st.integers(min_value=0, max_value=2 * 10**9),
    draining=st.booleans(),
)


def _coherent(q: QueueView) -> bool:
    """Views the orchestrator can actually produce."""
    if q.eligible > 0 and q.oldest_enqueue_ns is None:
        return False
    if q.oldest_enqueue_ns is not None and q.oldest_enqueue_ns > q.now_ns:
        return False
    return True


@given(q=queue_views.filter(_coherent), capacity=st.integers(1, 64))
def test_size_policy_cut_law(q: QueueView, capacity: int):
    policy = SizePolicy(capacity)
    expected = q.eligible >= capacity or (q.draining and q.eligible > 0)
    assert policy.should_cut(q) == expected
    assert policy.next_deadline_ns(q) is None


@given(
    q=queue_views.filter(_coherent),
    capacity=st.integers(1, 64),
    max_wait=st.integers(0, 10**6),
    advance=st.integers(0, 10**6),
)
def test_deadline_policy_is_monotone_in_time(
    q: QueueView, capacity: int, max_wait: int, advance: int
):
    """Once a queue state says "cut", strictly later virtual time (same
    queue) still says "cut" — deadlines never un-expire."""
    policy = DeadlinePolicy(capacity, max_wait)
    later = QueueView(
        eligible=q.eligible,
        oldest_enqueue_ns=q.oldest_enqueue_ns,
        now_ns=q.now_ns + advance,
        draining=q.draining,
    )
    if policy.should_cut(q):
        assert policy.should_cut(later)


@given(
    q=queue_views.filter(_coherent),
    capacity=st.integers(1, 64),
    max_wait=st.integers(0, 10**6),
)
def test_deadline_policy_next_deadline_is_tight(
    q: QueueView, capacity: int, max_wait: int
):
    """``next_deadline_ns`` is exactly when ``should_cut`` flips: not
    before (unless already cutting), and no later."""
    policy = DeadlinePolicy(capacity, max_wait)
    deadline = policy.next_deadline_ns(q)
    if deadline is None:
        assert q.eligible <= 0
        return
    at_deadline = QueueView(
        eligible=q.eligible,
        oldest_enqueue_ns=q.oldest_enqueue_ns,
        now_ns=max(q.now_ns, deadline),
        draining=q.draining,
    )
    assert policy.should_cut(at_deadline)
    if not policy.should_cut(q):
        assert deadline > q.now_ns


# -- end-to-end laws through the real orchestrator ----------------------

policy_specs = st.one_of(
    st.tuples(st.just("size"), st.integers(1, 8), st.just(0)),
    st.tuples(st.just("deadline"), st.integers(1, 8), st.integers(0, 5000)),
    st.tuples(st.just("hybrid"), st.integers(1, 8), st.integers(0, 5000)),
)

arrival_traces = st.lists(
    st.integers(min_value=0, max_value=2000), min_size=1, max_size=40
)


def _serve_trace(gaps, policy_name, capacity, max_wait_ns, verdict=None):
    """Post one request per arrival gap; return the orchestrator."""
    engine = StubEngine(batch_size=capacity, latency_ns=0.0, verdict=verdict)
    policy = make_policy(policy_name, capacity, max_wait_ns=max_wait_ns)

    async def main():
        orch = Orchestrator(engine, policy=policy)
        submits = []
        async with orch:
            for i, gap in enumerate(gaps):
                await orch.clock.sleep_ns(gap)
                submits.append(
                    (i, orch.clock.now_ns(), orch.post("noop", (i,)))
                )
        responses = [(i, t, await fut) for i, t, fut in submits]
        return orch, responses

    return run_simulation(main())


@settings(deadline=None, max_examples=60)
@given(gaps=arrival_traces, spec=policy_specs)
def test_every_request_in_exactly_one_batch(gaps, spec):
    name, capacity, max_wait_ns = spec
    orch, responses = _serve_trace(gaps, name, capacity, max_wait_ns)
    seen: list[int] = []
    for record in orch.batch_records:
        seen.extend(seq for seq, _tid in record.members)
    assert sorted(seen) == list(range(len(gaps)))
    assert len(seen) == len(set(seen))
    assert all(resp.committed for _i, _t, resp in responses)


@settings(deadline=None, max_examples=60)
@given(gaps=arrival_traces, spec=policy_specs)
def test_no_batch_exceeds_capacity(gaps, spec):
    name, capacity, max_wait_ns = spec
    orch, _responses = _serve_trace(gaps, name, capacity, max_wait_ns)
    assert orch.batch_records, "at least one batch must be cut"
    for record in orch.batch_records:
        assert len(record.members) <= capacity


@settings(deadline=None, max_examples=60)
@given(
    gaps=arrival_traces,
    capacity=st.integers(1, 8),
    max_wait_ns=st.integers(0, 5000),
    hybrid=st.booleans(),
)
def test_deadline_bound_holds_exactly(gaps, capacity, max_wait_ns, hybrid):
    """Zero-latency engine: no request's queue wait exceeds the policy's
    ``max_wait_ns`` — the forming deadline is a hard bound, not a hint."""
    name = "hybrid" if hybrid else "deadline"
    orch, responses = _serve_trace(gaps, name, capacity, max_wait_ns)
    for _i, submit_ns, resp in responses:
        assert resp.first_cut_ns - submit_ns <= max_wait_ns
        assert resp.queue_wait_ns >= 0


@settings(deadline=None, max_examples=30)
@given(
    gaps=st.lists(st.integers(0, 500), min_size=2, max_size=20),
    capacity=st.integers(1, 4),
)
def test_partition_holds_with_retries(gaps, capacity):
    """Concurrency-control aborts re-enter the queue: each *attempt*
    occupies one batch slot, and every request still resolves exactly
    once (committed on its second try)."""
    def abort_first_try(t):
        return "abort" if t.attempts == 1 else "commit"

    orch, responses = _serve_trace(
        gaps, "hybrid", capacity, 1000, verdict=abort_first_try
    )
    assert all(resp.committed for _i, _t, resp in responses)
    assert all(resp.attempts == 2 for _i, _t, resp in responses)
    placements = [
        seq for rec in orch.batch_records for seq, _tid in rec.members
    ]
    # each request appears exactly twice (original attempt + retry)
    assert sorted(set(placements)) == list(range(len(gaps)))
    assert len(placements) == 2 * len(gaps)
    for rec in orch.batch_records:
        assert len(rec.members) <= capacity

"""Warp-communication primitives and the Example-3 delayed-update merge.

The paper's Example 3: transactions updating the same hot row are
processed by one warp; each thread broadcasts its delta, merges the
deltas of lower-lane threads, and the highest-lane thread writes the
combined result back.  These tests execute that exact program on the
lock-step interpreter and check it equals serial application.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim import Warp


class TestShuffle:
    def test_shfl_up_shifts_lanes(self):
        out = np.zeros(8, dtype=np.int64)
        Warp(8).run(
            [
                ("lane", "i"),
                ("shfl_up", "s", "i", 1),
                ("st", "out", "i", "s"),
            ],
            {"out": out},
        )
        assert list(out) == [0, 0, 1, 2, 3, 4, 5, 6]

    def test_shfl_up_zero_delta_identity(self):
        out = np.zeros(4, dtype=np.int64)
        Warp(4).run(
            [("lane", "i"), ("shfl_up", "s", "i", 0), ("st", "out", "i", "s")],
            {"out": out},
        )
        assert list(out) == [0, 1, 2, 3]


class TestPrefixSum:
    def test_inclusive_prefix(self):
        out = np.zeros(8, dtype=np.int64)
        Warp(8).run(
            [
                ("const", "v", 2),
                ("prefix_sum", "p", "v"),
                ("lane", "i"),
                ("st", "out", "i", "p"),
            ],
            {"out": out},
        )
        assert list(out) == [2, 4, 6, 8, 10, 12, 14, 16]

    def test_reduce_add_broadcasts_total(self):
        out = np.zeros(4, dtype=np.int64)
        Warp(4).run(
            [
                ("lane", "i"),
                ("reduce_add", "t", "i"),
                ("st", "out", "i", "t"),
            ],
            {"out": out},
        )
        assert list(out) == [6, 6, 6, 6]

    def test_masked_lanes_excluded(self):
        out = np.zeros(8, dtype=np.int64)
        active = np.array([True] * 4 + [False] * 4)
        Warp(8).run(
            [
                ("const", "v", 1),
                ("reduce_add", "t", "v"),
                ("lane", "i"),
                ("st", "out", "i", "t"),
            ],
            {"out": out},
            active=active,
        )
        assert list(out[:4]) == [4, 4, 4, 4]
        assert list(out[4:]) == [0, 0, 0, 0]

    def test_last_lane_flag(self):
        out = np.zeros(8, dtype=np.int64)
        active = np.array([True] * 5 + [False] * 3)
        Warp(8).run(
            [("last_lane", "f"), ("lane", "i"), ("st", "out", "i", "f")],
            {"out": out},
            active=active,
        )
        assert list(out) == [0, 0, 0, 0, 1, 0, 0, 0]


class TestExample3DelayedMerge:
    """The full warp-level delayed-update program from the paper."""

    def merge_program(self):
        return [
            ("lane", "i"),
            ("ld", "delta", "deltas", "i"),       # each thread's W_YTD delta
            ("reduce_add", "total", "delta"),     # broadcast + merge
            ("const", "addr", 0),
            ("ld", "base", "row", "addr"),        # all threads read the row
            ("add", "result", "base", "total"),   # apply merged deltas
            ("last_lane", "is_last"),
            ("const", "one", 1),
            ("ifeq", "is_last", "one"),           # highest thread writes back
            ("st", "row", "addr", "result"),
            ("endif",),
        ]

    def test_merge_equals_serial_application(self):
        deltas = np.arange(1, 33, dtype=np.int64)  # 32 payments
        row = np.array([10_000], dtype=np.int64)
        Warp(32).run(self.merge_program(), {"deltas": deltas, "row": row})
        assert row[0] == 10_000 + deltas.sum()

    def test_merge_with_partial_warp(self):
        deltas = np.arange(1, 33, dtype=np.int64)
        row = np.array([500], dtype=np.int64)
        active = np.zeros(32, dtype=bool)
        active[:7] = True  # only 7 transactions hit this row
        Warp(32).run(
            self.merge_program(), {"deltas": deltas, "row": row}, active=active
        )
        assert row[0] == 500 + deltas[:7].sum()

    def test_single_writer_divergence_only_at_writeback(self):
        deltas = np.ones(32, dtype=np.int64)
        row = np.array([0], dtype=np.int64)
        stats = Warp(32).run(self.merge_program(), {"deltas": deltas, "row": row})
        # the only branch is the single-writer guard
        assert stats.divergent_branches == 1
        assert row[0] == 32

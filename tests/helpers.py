"""Shared test helpers (importable as `helpers`; kept out of
conftest.py so the module name never collides with benchmarks/)."""

from __future__ import annotations

import numpy as np

from repro.core import LTPGConfig, LTPGEngine
from repro.storage import Database, make_schema
from repro.txn import ProcedureRegistry, Transaction


def build_bank(accounts: int = 64, balance: int = 1000) -> tuple[Database, ProcedureRegistry]:
    """A tiny two-table bank: deterministic, easy to reason about.

    Procedures:

    * ``transfer(a, b, amount)`` — RMW both balances (classic conflict).
    * ``deposit(a, amount)``     — commutative ADD on one balance.
    * ``audit(a, b)``            — read two balances.
    * ``open_account(key, amount)`` — insert.
    * ``bad(a)``                 — always rolls itself back after a write.
    """
    db = Database("bank")
    table = db.create_table(make_schema("accounts", "acct_id", "balance", "flags"))
    table.bulk_load(
        np.arange(accounts, dtype=np.int64),
        {"balance": np.full(accounts, balance, dtype=np.int64)},
    )
    registry = ProcedureRegistry()

    @registry.register("transfer")
    def transfer(ctx, a, b, amount):
        bal_a = ctx.read("accounts", a, "balance")
        bal_b = ctx.read("accounts", b, "balance")
        ctx.write("accounts", a, "balance", bal_a - amount)
        ctx.write("accounts", b, "balance", bal_b + amount)

    @registry.register("deposit")
    def deposit(ctx, a, amount):
        ctx.add("accounts", a, "balance", amount)

    @registry.register("audit")
    def audit(ctx, a, b):
        ctx.read("accounts", a, "balance")
        ctx.read("accounts", b, "balance")

    @registry.register("open_account")
    def open_account(ctx, key, amount):
        ctx.insert("accounts", key, {"balance": amount})

    @registry.register("bad")
    def bad(ctx, a):
        ctx.write("accounts", a, "flags", 1)
        ctx.abort("always rolls back")

    return db, registry


def bank_engine(
    accounts: int = 64, config: LTPGConfig | None = None
) -> tuple[LTPGEngine, Database, ProcedureRegistry]:
    db, registry = build_bank(accounts)
    engine = LTPGEngine(db, registry, config or LTPGConfig(batch_size=64))
    return engine, db, registry


class StubEngine:
    """A scriptable engine double for the serve-layer tests.

    Implements exactly the surface the :class:`repro.serve.orchestrator
    .Orchestrator` touches — ``config.batch_size`` /
    ``config.effective_retry_delay``, ``run_batch``, optional ``tracer``
    — with a pluggable per-transaction ``verdict`` and a fixed simulated
    ``latency_ns`` per non-empty batch.  ``latency_ns=0`` makes policy
    deadlines *exact* (no queueing delay ever accrues), which the
    Hypothesis deadline-bound property relies on.

    ``verdict(txn) -> "commit" | "abort" | "logic"`` — "abort" means a
    concurrency-control abort (the orchestrator re-queues it).
    """

    def __init__(
        self,
        batch_size: int = 8,
        latency_ns: float = 0.0,
        retry_delay: int = 1,
        verdict=None,
    ):
        from types import SimpleNamespace

        self.config = SimpleNamespace(
            batch_size=batch_size, effective_retry_delay=retry_delay
        )
        self.latency_ns = latency_ns
        self.verdict = verdict or (lambda txn: "commit")
        self.tracer = None
        self.metrics = None
        #: every batch run, as (procedure_name, tid) tuples
        self.batches: list[list[tuple[str, int]]] = []

    def reset_run_state(self) -> None:
        self.batches = []

    def run_batch(self, batch):
        from repro.core.engine import BatchResult
        from repro.core.stats import BatchStats
        from repro.txn.transaction import TxnStatus

        self.batches.append([(t.procedure_name, t.tid) for t in batch])
        committed, aborted, logic = [], [], []
        for t in batch:
            t.attempts += 1
            kind = self.verdict(t)
            if kind == "commit":
                t.status = TxnStatus.COMMITTED
                committed.append(t)
            elif kind == "abort":
                t.status = TxnStatus.ABORTED
                t.abort_reason = "stub-cc"
                aborted.append(t)
            elif kind == "logic":
                t.status = TxnStatus.LOGIC_ABORTED
                t.abort_reason = "stub-logic"
                logic.append(t)
            else:  # pragma: no cover - test-authoring error
                raise ValueError(f"unknown stub verdict {kind!r}")
        stats = BatchStats(
            batch_index=len(self.batches) - 1,
            num_txns=len(batch),
            committed=len(committed),
            aborted=len(aborted),
            logic_aborted=len(logic),
            latency_ns=self.latency_ns if batch else 0.0,
        )
        return BatchResult(stats, committed, aborted, logic)


def txn(name: str, *params) -> Transaction:
    return Transaction(name, tuple(params))


def tids(transactions) -> None:
    """Assign sequential TIDs in list order."""
    for i, t in enumerate(transactions):
        t.tid = i



"""Shared test helpers (importable as `helpers`; kept out of
conftest.py so the module name never collides with benchmarks/)."""

from __future__ import annotations

import numpy as np

from repro.core import LTPGConfig, LTPGEngine
from repro.storage import Database, make_schema
from repro.txn import ProcedureRegistry, Transaction


def build_bank(accounts: int = 64, balance: int = 1000) -> tuple[Database, ProcedureRegistry]:
    """A tiny two-table bank: deterministic, easy to reason about.

    Procedures:

    * ``transfer(a, b, amount)`` — RMW both balances (classic conflict).
    * ``deposit(a, amount)``     — commutative ADD on one balance.
    * ``audit(a, b)``            — read two balances.
    * ``open_account(key, amount)`` — insert.
    * ``bad(a)``                 — always rolls itself back after a write.
    """
    db = Database("bank")
    table = db.create_table(make_schema("accounts", "acct_id", "balance", "flags"))
    table.bulk_load(
        np.arange(accounts, dtype=np.int64),
        {"balance": np.full(accounts, balance, dtype=np.int64)},
    )
    registry = ProcedureRegistry()

    @registry.register("transfer")
    def transfer(ctx, a, b, amount):
        bal_a = ctx.read("accounts", a, "balance")
        bal_b = ctx.read("accounts", b, "balance")
        ctx.write("accounts", a, "balance", bal_a - amount)
        ctx.write("accounts", b, "balance", bal_b + amount)

    @registry.register("deposit")
    def deposit(ctx, a, amount):
        ctx.add("accounts", a, "balance", amount)

    @registry.register("audit")
    def audit(ctx, a, b):
        ctx.read("accounts", a, "balance")
        ctx.read("accounts", b, "balance")

    @registry.register("open_account")
    def open_account(ctx, key, amount):
        ctx.insert("accounts", key, {"balance": amount})

    @registry.register("bad")
    def bad(ctx, a):
        ctx.write("accounts", a, "flags", 1)
        ctx.abort("always rolls back")

    return db, registry


def bank_engine(
    accounts: int = 64, config: LTPGConfig | None = None
) -> tuple[LTPGEngine, Database, ProcedureRegistry]:
    db, registry = build_bank(accounts)
    engine = LTPGEngine(db, registry, config or LTPGConfig(batch_size=64))
    return engine, db, registry


def txn(name: str, *params) -> Transaction:
    return Transaction(name, tuple(params))


def tids(transactions) -> None:
    """Assign sequential TIDs in list order."""
    for i, t in enumerate(transactions):
        t.tid = i



"""Device-resident table residency: coherence edges and byte identity.

The residency layer (:mod:`repro.xp.residency`) keeps the authoritative
table snapshot on the device across batches; everything here pins the
edges where that ownership inversion could go stale:

* byte identity of the full observable surface (statuses, op streams,
  final digest) between ``device_resident=0`` and ``device_resident=1``
  on TPC-C, YCSB and SmallBank;
* the steady-state transfer drop the feature exists for (ledger-counted
  on mockgpu, deterministic);
* backend swap mid-session (dirty columns fence through the *outgoing*
  backend's crossings before the new backend re-uploads);
* ``reset_run_state`` (run boundary = full host sync, device copies
  survive for the next run);
* ``parallel_workers`` shm export under the numpy backend (residency is
  inert on host-identity backends, so the exported snapshot is current
  by construction);
* table ``_grow`` / ``append_keys`` during inserts (capacity doubling
  swaps the host ndarray out from under the device cache; the view must
  fence first and re-upload lazily);
* serve-loop reuse: back-to-back :func:`~repro.serve.api.serve_run`
  calls on one resident engine.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import LTPGConfig, LTPGEngine
from repro.storage.database import Database
from repro.storage.schema import ColumnDef, Schema
from repro.txn import Transaction
from repro.workloads.smallbank import build_smallbank
from repro.workloads.tpcc import DELAYED_COLUMNS, SPLIT_COLUMNS, TpccMix, build_tpcc
from repro.workloads.ycsb import build_ycsb
from repro.workloads.ycsb.generator import ycsb_delayed_columns

pytestmark = pytest.mark.backend

FULL_MIX = TpccMix(
    neworder=0.4, payment=0.3, orderstatus=0.1, stocklevel=0.1, delivery=0.1
)
BATCH = 1024


def _tpcc_build(backend, resident, **overrides):
    db, registry, gen = build_tpcc(
        warehouses=2, num_items=2000, mix=FULL_MIX, seed=7
    )
    config = LTPGConfig(
        batch_size=BATCH,
        columnar_ops=True,
        batched_exec=True,
        delayed_update=True,
        delayed_columns=DELAYED_COLUMNS,
        split_flags=True,
        split_columns=SPLIT_COLUMNS,
        array_backend=backend,
        device_resident=resident,
        **overrides,
    )
    return LTPGEngine(db, registry, config), gen


def _ycsb_build(backend, resident):
    kwargs = dict(num_records=2000, workload="a", zipf_alpha=2.5, seed=11)
    db, registry, gen = build_ycsb(**kwargs)
    config = LTPGConfig(
        batch_size=BATCH,
        columnar_ops=True,
        batched_exec=True,
        delayed_update=True,
        delayed_columns=ycsb_delayed_columns(),
        array_backend=backend,
        device_resident=resident,
    )
    return LTPGEngine(db, registry, config), gen


def _smallbank_build(backend, resident):
    db, registry, gen = build_smallbank(num_accounts=500, zipf_alpha=1.2, seed=3)
    config = LTPGConfig(
        batch_size=BATCH,
        columnar_ops=True,
        batched_exec=True,
        array_backend=backend,
        device_resident=resident,
    )
    return LTPGEngine(db, registry, config), gen


_BUILDS = {
    "tpcc": _tpcc_build,
    "ycsb": _ycsb_build,
    "smallbank": _smallbank_build,
}


def _observe(engine, batches):
    out = []
    for specs in batches:
        batch = [Transaction(n, p, tid=i) for i, (n, p) in enumerate(specs)]
        result = engine.run_batch(batch)
        out.append(
            {
                "committed": result.stats.committed,
                "aborted": result.stats.aborted,
                "statuses": [t.status for t in batch],
                "reasons": [t.abort_reason for t in batch],
                "ops": [t.ops.raw for t in batch],
            }
        )
    out.append(engine.database.state_digest())
    return out


def _run(workload, backend, resident, n_batches=3):
    engine, gen = _BUILDS[workload](backend, resident)
    batches = [
        [(t.procedure_name, t.params) for t in gen.make_batch(BATCH)]
        for _ in range(n_batches)
    ]
    observed = _observe(engine, batches)
    transfers = engine.last_transfers
    return observed, transfers


# ---------------------------------------------------------------------------
# Byte identity across device_resident on all three workloads
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("workload", ["tpcc", "ycsb", "smallbank"])
def test_resident_byte_identical(workload):
    baseline, _ = _run(workload, "mockgpu", resident=False)
    resident, _ = _run(workload, "mockgpu", resident=True)
    reference, _ = _run(workload, "numpy", resident=False)
    assert resident == baseline
    assert resident == reference


@pytest.mark.parametrize("workload", ["tpcc", "ycsb", "smallbank"])
def test_resident_inert_on_numpy(workload):
    # host-identity backend: the flag changes nothing, including the
    # (all-zero) transfer ledger
    off, t_off = _run(workload, "numpy", resident=False)
    on, t_on = _run(workload, "numpy", resident=True)
    assert on == off
    assert t_on == t_off


def test_resident_steady_state_transfer_drop():
    # the reason the feature exists: steady-state per-batch H2D falls
    # from whole-column round-trips to op-proportional shuttle traffic
    _, baseline = _run("tpcc", "mockgpu", resident=False)
    _, resident = _run("tpcc", "mockgpu", resident=True)
    assert resident["h2d_bytes"] * 3 <= baseline["h2d_bytes"]
    assert resident["d2h_bytes"] < baseline["d2h_bytes"]


# ---------------------------------------------------------------------------
# Backend swap mid-session
# ---------------------------------------------------------------------------
def test_backend_swap_mid_session_fences_through_old_backend():
    engine, gen = _tpcc_build("mockgpu", resident=True)
    batches = [
        [(t.procedure_name, t.params) for t in gen.make_batch(BATCH)]
        for _ in range(2)
    ]
    reference_engine, _ = _tpcc_build("numpy", resident=False)
    expected = _observe(reference_engine, batches)

    out = _observe(engine, batches[:1])[:-1]
    # swap the whole config object mid-session: _ensure_backend must
    # fence the dirty resident columns through the outgoing mockgpu
    # crossings before numpy takes over on the same host arrays
    engine.config = dataclasses.replace(
        engine.config, array_backend="numpy", device_resident=False
    )
    out.extend(_observe(engine, batches[1:]))
    assert out == expected
    assert engine._residency is None  # old cache detached, not reused


def test_resident_flag_flip_mid_session():
    engine, gen = _tpcc_build("mockgpu", resident=True)
    batches = [
        [(t.procedure_name, t.params) for t in gen.make_batch(BATCH)]
        for _ in range(2)
    ]
    reference_engine, _ = _tpcc_build("mockgpu", resident=False)
    expected = _observe(reference_engine, batches)

    out = _observe(engine, batches[:1])[:-1]
    engine.config = dataclasses.replace(engine.config, device_resident=False)
    out.extend(_observe(engine, batches[1:]))
    assert out == expected


# ---------------------------------------------------------------------------
# reset_run_state: run boundary = host sync, device copies survive
# ---------------------------------------------------------------------------
def test_reset_run_state_syncs_host_and_keeps_device_cache():
    engine, gen = _tpcc_build("mockgpu", resident=True)
    reference_engine, _ = _tpcc_build("mockgpu", resident=False)
    batches = [
        [(t.procedure_name, t.params) for t in gen.make_batch(BATCH)]
        for _ in range(2)
    ]
    expected_mid = _observe(reference_engine, batches[:1])[-1]
    expected_end = _observe(reference_engine, batches[1:])[-1]

    _observe(engine, batches[:1])
    engine.reset_run_state()
    # after the run-boundary fence the *host* digest is current without
    # any further residency involvement
    assert engine.database.state_digest() == expected_mid
    # and the surviving device copies stay coherent for the next run
    assert _observe(engine, batches[1:])[-1] == expected_end


# ---------------------------------------------------------------------------
# parallel_workers shm export (numpy backend, residency inert)
# ---------------------------------------------------------------------------
def test_parallel_shm_export_with_resident_flag():
    def run(resident):
        db, registry, gen = build_smallbank(
            num_accounts=200, zipf_alpha=1.2, seed=3
        )
        config = LTPGConfig(
            batch_size=128,
            columnar_ops=True,
            batched_exec=True,
            parallel_workers=2,
            array_backend="numpy",
            device_resident=resident,
        )
        engine = LTPGEngine(db, registry, config)
        try:
            batches = [
                [(t.procedure_name, t.params) for t in gen.make_batch(128)]
                for _ in range(2)
            ]
            return _observe(engine, batches)
        finally:
            engine.close()

    assert run(True) == run(False)


# ---------------------------------------------------------------------------
# _grow / append_keys: capacity doubling swaps the host ndarray
# ---------------------------------------------------------------------------
def _unit_fixture():
    from repro.xp import get_backend
    from repro.xp.residency import ResidencyManager

    db = Database("t")
    schema = Schema("acct", "key", (ColumnDef("bal"), ColumnDef("flags")))
    table = db.create_table(schema, capacity=4)
    for k in range(4):
        table.insert(k * 10, {"bal": k})
    xp = get_backend("mockgpu")
    res = ResidencyManager(xp, db)
    return xp, res, table


def test_grow_fences_dirty_columns_before_resize():
    xp, res, table = _unit_fixture()
    dev = res.device_column(table, "bal")
    xp.scatter_add(dev, xp.from_host(np.array([0, 2])),
                   xp.from_host(np.array([100, 100])))
    res.mark_dirty(table, "bal")
    # inserts past capacity trigger _grow: the fence must land the
    # device deltas in the *old* array before np.resize copies it
    for k in range(4, 9):
        row = table.insert(k * 10, {"bal": k})
        res.note_appended(table, np.array([row]))
    assert table.column("bal")[:9].tolist() == [100, 1, 102, 3, 4, 5, 6, 7, 8]
    before = res.stats.uploads
    # the device cache re-uploads lazily from the grown host array
    grown = res.device_column(table, "bal")
    assert res.stats.uploads > before
    assert xp.to_host(grown)[:9].tolist() == [100, 1, 102, 3, 4, 5, 6, 7, 8]


def test_append_keys_mirrors_into_resident_keys():
    xp, res, table = _unit_fixture()
    dev_keys = res.device_column(table, None)  # None = the key column
    assert xp.to_host(dev_keys)[:4].tolist() == [0, 10, 20, 30]
    rows = table.append_keys(np.array([40, 50], dtype=np.int64))
    res.note_appended(table, rows)
    fresh = res.device_column(table, None)
    assert xp.to_host(fresh)[:6].tolist() == [0, 10, 20, 30, 40, 50]


def test_host_write_drops_stale_device_copy():
    xp, res, table = _unit_fixture()
    dev = res.device_column(table, "bal")
    assert xp.to_host(dev)[1] == 1
    table.write(1, "bal", 777)  # host write: device copy is now stale
    fresh = res.device_column(table, "bal")
    assert xp.to_host(fresh)[1] == 777


# ---------------------------------------------------------------------------
# Serve-loop reuse across ServeSession runs
# ---------------------------------------------------------------------------
def test_serve_loop_reuse_back_to_back_runs():
    from repro.serve.api import serve_run

    def run_twice(resident):
        db, registry, gen = build_smallbank(
            num_accounts=500, zipf_alpha=1.2, seed=3
        )
        config = LTPGConfig(
            batch_size=256,
            columnar_ops=True,
            batched_exec=True,
            array_backend="mockgpu",
            device_resident=resident,
        )
        engine = LTPGEngine(db, registry, config)
        reports = [
            serve_run(
                engine, gen, workload="smallbank", num_requests=200,
                mode="open",
            )
            for _ in range(2)
        ]
        digest = db.state_digest()
        return [
            (r.submitted, r.committed, r.batches, r.latency) for r in reports
        ], digest

    resident_reports, resident_digest = run_twice(True)
    baseline_reports, baseline_digest = run_twice(False)
    assert resident_reports == baseline_reports
    assert resident_digest == baseline_digest

"""Storage layer: schemas, tables, indexes, database, snapshots, WAL."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DuplicateKey, KeyNotFound, StorageError
from repro.storage import (
    BatchLog,
    Database,
    LogRecord,
    Schema,
    Snapshot,
    SnapshotManager,
    Table,
    make_schema,
)
from repro.txn import Transaction


class TestSchema:
    def test_make_schema(self):
        s = make_schema("t", "id", "a", "b")
        assert s.column_names == ("a", "b")
        assert s.num_columns == 2
        assert s.row_bytes == 24

    def test_duplicate_columns_rejected(self):
        with pytest.raises(StorageError):
            make_schema("t", "id", "a", "a")

    def test_key_column_must_not_repeat(self):
        with pytest.raises(StorageError):
            make_schema("t", "a", "a", "b")

    def test_invalid_column_name(self):
        with pytest.raises(StorageError):
            make_schema("t", "id", "not a name")

    def test_column_index(self):
        s = make_schema("t", "id", "a", "b")
        assert s.column_index("b") == 1
        with pytest.raises(StorageError):
            s.column_index("c")


class TestTable:
    def make(self) -> Table:
        return Table(make_schema("t", "id", "a", "b"), capacity=4)

    def test_insert_and_read(self):
        t = self.make()
        row = t.insert(10, {"a": 1, "b": 2})
        assert t.read(row, "a") == 1
        assert t.key_of(row) == 10
        assert t.lookup(10) == row

    def test_insert_duplicate_key_rejected(self):
        t = self.make()
        t.insert(10)
        with pytest.raises(DuplicateKey):
            t.insert(10)

    def test_unknown_column_rejected(self):
        t = self.make()
        with pytest.raises(StorageError):
            t.insert(1, {"nope": 2})

    def test_lookup_missing_key(self):
        t = self.make()
        with pytest.raises(KeyNotFound):
            t.lookup(42)
        assert t.get_row(42) is None

    def test_growth_beyond_capacity(self):
        t = self.make()
        for k in range(100):
            t.insert(k, {"a": k})
        assert t.num_rows == 100
        assert t.read(t.lookup(77), "a") == 77

    def test_write_and_add(self):
        t = self.make()
        row = t.insert(1, {"a": 5})
        t.write(row, "a", 9)
        t.add(row, "a", 1)
        assert t.read(row, "a") == 10

    def test_row_bounds_checked(self):
        t = self.make()
        with pytest.raises(StorageError):
            t.read(0, "a")

    def test_read_many_vectorized(self):
        t = self.make()
        for k in range(5):
            t.insert(k, {"a": k * 10})
        got = t.read_many([0, 2, 4], "a")
        assert list(got) == [0, 20, 40]

    def test_bulk_load_dense_fast_path(self):
        t = self.make()
        t.bulk_load(np.arange(1000), {"a": np.arange(1000) * 2})
        assert t.lookup(999) == 999
        assert t.read(500, "a") == 1000
        assert len(t.primary) == 0  # dense path: no dict entries

    def test_bulk_load_sparse_keys(self):
        t = self.make()
        t.bulk_load(np.array([5, 17, 99]), {"a": np.array([1, 2, 3])})
        assert t.lookup(17) == 1

    def test_bulk_load_duplicate_keys_rejected(self):
        t = self.make()
        with pytest.raises(DuplicateKey):
            t.bulk_load(np.array([3, 3]), {})

    def test_bulk_load_requires_empty(self):
        t = self.make()
        t.insert(1)
        with pytest.raises(StorageError):
            t.bulk_load(np.array([2]), {})

    def test_insert_after_dense_load(self):
        t = self.make()
        t.bulk_load(np.arange(10), {})
        row = t.insert(100, {"a": 7})
        assert t.lookup(100) == row
        with pytest.raises(DuplicateKey):
            t.insert(5)  # inside the dense range

    def test_secondary_index_maintained_on_insert(self):
        t = self.make()
        t.add_secondary_index("a")
        t.insert(1, {"a": 42})
        t.insert(2, {"a": 42})
        t.insert(3, {"a": 7})
        assert t.secondary["a"].lookup(42) == [0, 1]
        assert t.secondary["a"].last(42) == 1

    def test_secondary_index_backfills_existing_rows(self):
        t = self.make()
        t.insert(1, {"a": 5})
        t.add_secondary_index("a")
        assert t.secondary["a"].lookup(5) == [0]

    def test_secondary_index_unknown_column(self):
        t = self.make()
        with pytest.raises(StorageError):
            t.add_secondary_index("zzz")

    def test_copy_is_deep(self):
        t = self.make()
        t.insert(1, {"a": 5})
        clone = t.copy()
        clone.write(0, "a", 99)
        clone.insert(2)
        assert t.read(0, "a") == 5
        assert t.num_rows == 1

    def test_state_signature_changes_with_data(self):
        t = self.make()
        t.insert(1, {"a": 5})
        sig = t.state_signature()
        t.write(0, "a", 6)
        assert t.state_signature() != sig


class TestDatabase:
    def test_create_and_lookup(self):
        db = Database()
        t = db.create_table(make_schema("x", "id", "a"))
        assert db.table("x") is t
        assert db.table_by_id(db.table_id("x")) is t

    def test_duplicate_table_rejected(self):
        db = Database()
        db.create_table(make_schema("x", "id", "a"))
        with pytest.raises(StorageError):
            db.create_table(make_schema("x", "id", "a"))

    def test_unknown_table(self):
        db = Database()
        with pytest.raises(StorageError):
            db.table("nope")
        with pytest.raises(StorageError):
            db.table_by_id(3)

    def test_digest_detects_changes(self):
        db = Database()
        t = db.create_table(make_schema("x", "id", "a"))
        t.insert(1, {"a": 1})
        d1 = db.state_digest()
        t.write(0, "a", 2)
        assert db.state_digest() != d1

    def test_copy_independent(self):
        db = Database()
        t = db.create_table(make_schema("x", "id", "a"))
        t.insert(1, {"a": 1})
        clone = db.copy()
        clone.table("x").write(0, "a", 50)
        assert db.table("x").read(0, "a") == 1
        assert clone.state_digest() != db.state_digest()


class TestSnapshot:
    def test_capture_and_restore(self):
        db = Database()
        t = db.create_table(make_schema("x", "id", "a"))
        t.insert(1, {"a": 1})
        snap = Snapshot.capture(db, batch_index=3)
        t.write(0, "a", 99)
        restored = snap.restore()
        assert restored.table("x").read(0, "a") == 1
        assert snap.digest == restored.state_digest()

    def test_manager_interval(self):
        db = Database()
        db.create_table(make_schema("x", "id", "a"))
        manager = SnapshotManager(interval_batches=4, keep=2)
        assert manager.maybe_capture(db, 0) is not None
        assert manager.maybe_capture(db, 1) is None
        assert manager.maybe_capture(db, 4) is not None
        assert manager.maybe_capture(db, 8) is not None
        assert len(manager) == 2  # keep bound
        assert manager.latest.batch_index == 8


class TestBatchLog:
    def make_txns(self):
        txns = [Transaction("p", (1, 2), tid=i) for i in range(3)]
        return txns

    def test_append_and_outcome(self):
        log = BatchLog()
        log.append_batch(0, self.make_txns())
        log.record_outcome(0, committed=[0, 2], aborted=[1])
        entry = log.batches()[0]
        assert entry.committed_tids == [0, 2]
        assert entry.aborted_tids == [1]

    def test_outcome_for_unlogged_batch(self):
        log = BatchLog()
        with pytest.raises(StorageError):
            log.record_outcome(5, [], [])

    def test_dump_and_record_roundtrip(self):
        log = BatchLog()
        log.append_batch(0, self.make_txns())
        lines = log.dump_lines()
        assert len(lines) == 3
        rec = LogRecord.from_json(LogRecord(1, "p", (4, 5)).to_json())
        assert rec == LogRecord(1, "p", (4, 5))

    def test_replay_order(self):
        log = BatchLog()
        log.append_batch(0, self.make_txns())
        log.append_batch(1, [Transaction("q", (), tid=9)])
        seen = []
        log.replay(lambda entry: seen.append(entry.batch_index))
        assert seen == [0, 1]

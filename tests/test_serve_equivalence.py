"""Served stream ≡ pre-generated batches: byte-identical final state.

The serving layer claims it changes *when* batches are cut, never what
they commit.  Two differentials back that up on all three benchmark
workloads (TPC-C, YCSB-A, SmallBank):

* **size policy vs. pre-generated** — serving a request stream under
  :class:`SizePolicy` must commit byte-identical database state to the
  classic path (admit everything up front, form fixed-size batches with
  the same :class:`BatchScheduler`, run until drained), because the
  orchestrator reuses that scheduler verbatim: same TID assignment,
  same retries-first ordering, same pipeline delays.
* **deadline/hybrid replay** — deadline-cut batch compositions depend
  on arrival timing, so there is no closed-form reference.  Instead the
  serve run records every cut batch's (request, TID) members, and the
  test replays those exact batches against a fresh engine + database;
  the digests must match, proving the serve path's *execution* adds
  nothing beyond batch forming.

Both differentials run configurations that actually abort and retry —
a serve layer that never re-queued an abort would pass trivially.
"""

from __future__ import annotations

import pytest

from repro.analysis.workload import WORKLOAD_NAMES, build_workload
from repro.serve.clock import run_simulation
from repro.serve.orchestrator import Orchestrator
from repro.serve.policies import make_policy
from repro.txn.batch import BatchScheduler
from repro.txn.transaction import Transaction

pytestmark = pytest.mark.serve

#: Per-workload engine overrides chosen so every configuration aborts
#: and retries (YCSB-A with delayed updates on commits everything —
#: turning them off restores write-write conflicts).
CONFLICT_OVERRIDES = {
    "tpcc": {},
    "ycsb": {"delayed_update": False, "logical_reordering": False},
    "smallbank": {},
}

SEED = 1234


def _specs(name: str, count: int) -> list[tuple[str, tuple]]:
    """Draw ``count`` transaction bodies the way the ingress does: one
    at a time from a fresh, seeded workload generator."""
    setup = build_workload(name, seed=SEED)
    return [
        (t.procedure_name, t.params)
        for _ in range(count)
        for t in setup.generator.make_batch(1)
    ]


def _engine(name: str, batch_size: int, **overrides):
    setup = build_workload(name, seed=SEED)
    merged = dict(CONFLICT_OVERRIDES[name])
    merged.update(overrides)
    return setup.engine(batch_size=batch_size, sanitize=False, **merged)


def _serve(name, specs, policy_name, batch_size, gap_ns=150, **overrides):
    """Serve ``specs`` in order on the virtual clock; return the final
    digest, per-request responses, batch records, and retry count."""
    engine = _engine(name, batch_size, **overrides)
    policy = make_policy(policy_name, batch_size, max_wait_ns=2_000)

    async def main():
        async with Orchestrator(engine, policy=policy) as orch:
            futures = []
            for procedure, params in specs:
                await orch.clock.sleep_ns(gap_ns)
                futures.append(orch.post(procedure, params))
        responses = [await f for f in futures]
        return responses, orch

    try:
        responses, orch = run_simulation(main())
        digest = engine.database.state_digest()
    finally:
        engine.close()
    retries = orch.metrics.counter("serve.retries").value
    return digest, responses, orch.batch_records, retries


def _pregenerated(name, specs, batch_size, **overrides):
    """The classic path: admit everything, drain fixed-size batches."""
    engine = _engine(name, batch_size, **overrides)
    txns = [Transaction(procedure, params) for procedure, params in specs]
    scheduler = BatchScheduler(
        batch_size, retry_delay_batches=engine.config.effective_retry_delay
    )
    scheduler.admit(txns)
    try:
        while scheduler.has_work():
            result = engine.run_batch(scheduler.next_batch())
            scheduler.requeue_aborted(result.aborted)
        digest = engine.database.state_digest()
    finally:
        engine.close()
    return digest, txns


def _replay(name, specs, records, **overrides):
    """Re-run the recorded batch compositions against a fresh engine."""
    batch_size = max((len(r.members) for r in records), default=1)
    engine = _engine(name, batch_size, **overrides)
    txns = [Transaction(procedure, params) for procedure, params in specs]
    try:
        for record in records:
            batch = []
            for seq, tid in record.members:
                txn = txns[seq]
                if txn.tid < 0:
                    txn.tid = tid
                else:
                    assert txn.tid == tid, "retry must keep its first TID"
                batch.append(txn)
            engine.run_batch(batch)
        digest = engine.database.state_digest()
    finally:
        engine.close()
    return digest, txns


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
@pytest.mark.parametrize("batch_size", [16, 48])
def test_size_policy_matches_pregenerated(workload, batch_size):
    specs = _specs(workload, 160)
    served, responses, _records, retries = _serve(
        workload, specs, "size", batch_size
    )
    pregen, txns = _pregenerated(workload, specs, batch_size)
    assert served == pregen
    # not a trivial pass: the stream must have aborted and retried
    assert retries > 0
    # per-request verdicts line up too, not just the aggregate state
    assert [r.status for r in responses] == [t.status for t in txns]
    assert [r.tid for r in responses] == [t.tid for t in txns]
    assert [r.attempts for r in responses] == [t.attempts for t in txns]


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
@pytest.mark.parametrize(
    "policy_name,batch_size", [("deadline", 16), ("hybrid", 24), ("hybrid", 8)]
)
def test_deadline_cuts_replay_identically(workload, policy_name, batch_size):
    specs = _specs(workload, 160)
    # dense arrivals so deadline cuts still form conflict-heavy batches
    served, responses, records, retries = _serve(
        workload, specs, policy_name, batch_size, gap_ns=40
    )
    replayed, txns = _replay(workload, specs, records)
    assert served == replayed
    assert retries > 0
    assert [r.status for r in responses] == [t.status for t in txns]
    # deadline cuts must actually have produced partial batches, or this
    # test degenerates into the size-policy one
    sizes = [len(r.members) for r in records if r.members]
    assert any(s < batch_size for s in sizes)


@pytest.mark.parametrize("workload", ["smallbank", "tpcc"])
def test_pipelined_retry_delay_matches(workload):
    """Pipelined mode (retry +2 batches) exercises the orchestrator's
    index-advancing empty cuts; state must still match the classic
    path, which advances indices by cutting on a fixed cadence."""
    specs = _specs(workload, 120)
    served, _responses, _records, retries = _serve(
        workload, specs, "size", 16, pipelined=True
    )
    pregen, _txns = _pregenerated(workload, specs, 16, pipelined=True)
    assert served == pregen
    assert retries > 0

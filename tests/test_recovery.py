"""Snapshot + log-replay recovery on the deterministic engine."""

from __future__ import annotations

import pytest

from helpers import build_bank, txn
from repro.core import LTPGConfig, LTPGEngine
from repro.errors import StorageError
from repro.storage import BatchLog, Snapshot
from repro.storage.recovery import recover, transactions_from_record
from repro.txn import BatchScheduler


def run_workload(engine, scheduler, batches):
    """Drive a few batches of contended transfers + deposits."""
    for i in range(batches):
        scheduler.admit(
            [txn("transfer", (i + j) % 8, (i + j + 1) % 8, 1) for j in range(6)]
            + [txn("deposit", j % 4, 5) for j in range(6)]
        )
        batch = scheduler.next_batch()
        result = engine.run_batch(batch)
        scheduler.requeue_aborted(result.aborted)


class TestRecovery:
    def make_engine(self, db):
        return LTPGEngine(db, self.registry, LTPGConfig(batch_size=16))

    def crash_and_recover(self, snapshot_at: int, total_batches: int):
        db, self.registry = build_bank(accounts=16)
        engine = LTPGEngine(db, self.registry, LTPGConfig(batch_size=16))
        scheduler = BatchScheduler(16)

        snapshot = Snapshot.capture(db, batch_index=0)
        for i in range(total_batches):
            if i == snapshot_at:
                snapshot = Snapshot.capture(db, batch_index=i)
            scheduler.admit(
                [txn("transfer", (i + j) % 8, (i + j + 1) % 8, 1) for j in range(6)]
                + [txn("deposit", j % 4, 5) for j in range(6)]
            )
            batch = scheduler.next_batch()
            result = engine.run_batch(batch)
            scheduler.requeue_aborted(result.aborted)
        pre_crash_digest = db.state_digest()

        recovered_engine, report = recover(
            snapshot, engine.batch_log, self.make_engine
        )
        return pre_crash_digest, recovered_engine, report

    def test_recover_from_initial_snapshot(self):
        digest, engine, report = self.crash_and_recover(snapshot_at=0, total_batches=5)
        assert report.final_digest == digest
        assert report.batches_replayed == 5

    def test_recover_from_mid_run_snapshot(self):
        digest, engine, report = self.crash_and_recover(snapshot_at=3, total_batches=6)
        assert report.final_digest == digest
        assert report.batches_replayed == 3
        assert report.snapshot_batch == 3

    def test_recover_validates_commit_sets(self):
        db, self.registry = build_bank(accounts=8)
        engine = LTPGEngine(db, self.registry, LTPGConfig(batch_size=8))
        snapshot = Snapshot.capture(db, batch_index=0)
        batch = [txn("transfer", 0, 1, 5)]
        batch[0].tid = 0
        engine.run_batch(batch)
        # Corrupt the log's recorded outcome: replay must detect it.
        engine.batch_log.batches()[0].committed_tids = [999]
        with pytest.raises(StorageError):
            recover(snapshot, engine.batch_log, self.make_engine)

    def test_transactions_from_record_preserve_tids(self):
        db, self.registry = build_bank(accounts=8)
        engine = LTPGEngine(db, self.registry, LTPGConfig(batch_size=8))
        batch = [txn("deposit", 1, 2), txn("deposit", 2, 3)]
        batch[0].tid, batch[1].tid = 7, 9
        engine.run_batch(batch)
        rebuilt = transactions_from_record(engine.batch_log.batches()[0])
        assert [t.tid for t in rebuilt] == [7, 9]
        assert [t.params for t in rebuilt] == [(1, 2), (2, 3)]

    def test_recovered_engine_continues_processing(self):
        digest, engine, report = self.crash_and_recover(snapshot_at=2, total_batches=4)
        follow_up = [txn("deposit", 0, 100)]
        follow_up[0].tid = 10_000
        result = engine.run_batch(follow_up)
        assert result.stats.committed == 1


class TestRecoveryProperty:
    """Random workloads: recovery always reproduces the crashed state."""

    def test_random_histories_recover_exactly(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @st.composite
        def histories(draw):
            batches = draw(st.integers(1, 4))
            snapshot_at = draw(st.integers(0, batches - 1))
            ops = [
                [
                    (
                        draw(st.sampled_from(["transfer", "deposit"])),
                        draw(st.integers(0, 7)),
                        draw(st.integers(0, 7)),
                        1 + draw(st.integers(0, 4)),
                    )
                    for _ in range(draw(st.integers(1, 8)))
                ]
                for _ in range(batches)
            ]
            return snapshot_at, ops

        @given(histories())
        @settings(max_examples=25, deadline=None)
        def check(history):
            snapshot_at, batch_specs = history
            db, registry = build_bank(accounts=8)
            config = LTPGConfig(batch_size=16)
            engine = LTPGEngine(db, registry, config)
            snapshot = Snapshot.capture(db, batch_index=0)
            tid = 0
            for i, specs in enumerate(batch_specs):
                if i == snapshot_at:
                    snapshot = Snapshot.capture(db, batch_index=i)
                batch = []
                for name, a, b, v in specs:
                    if name == "transfer":
                        batch.append(txn("transfer", a, (b + 1) % 8, v))
                    else:
                        batch.append(txn("deposit", a, v))
                for t in batch:
                    t.tid = tid
                    tid += 1
                engine.run_batch(batch)
            expected = db.state_digest()
            _, report = recover(
                snapshot,
                engine.batch_log,
                lambda database: LTPGEngine(database, registry, config),
            )
            assert report.final_digest == expected

        check()

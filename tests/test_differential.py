"""Differential testing: LTPG (GPU optimizations off) against Aria.

Both are deterministic OCC with reordering at row granularity, so on
any workload that avoids delayed columns they must agree *exactly* —
same per-transaction statuses, same final state.  Hypothesis drives
random batches through both engines.
"""

from __future__ import annotations

import copy
import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import build_bank
from repro.baselines import AriaEngine
from repro.core import LTPGConfig, LTPGEngine
from repro.txn import Transaction


@st.composite
def mixed_batches(draw):
    n = draw(st.integers(1, 20))
    specs = []
    for _ in range(n):
        kind = draw(
            st.sampled_from(["transfer", "deposit", "audit", "open_account", "bad"])
        )
        a = draw(st.integers(0, 11))
        b = draw(st.integers(0, 11))
        if kind == "transfer":
            specs.append((kind, (a, (a + 1 + b) % 12, 1 + a)))
        elif kind == "deposit":
            specs.append((kind, (a, 1 + b)))
        elif kind == "audit":
            specs.append((kind, (a, b)))
        elif kind == "open_account":
            specs.append((kind, (100 + draw(st.integers(0, 5)), 7)))
        else:
            specs.append((kind, (a,)))
    return specs


def run_ltpg(specs):
    db, registry = build_bank(accounts=12)
    config = dataclasses.replace(
        LTPGConfig(batch_size=32).without_optimizations(),
        logical_reordering=True,
    )
    engine = LTPGEngine(db, registry, config)
    batch = [Transaction(k, p, tid=i) for i, (k, p) in enumerate(specs)]
    engine.run_batch(batch)
    return db, batch


def run_aria(specs):
    db, registry = build_bank(accounts=12)
    engine = AriaEngine(db, registry)
    batch = [Transaction(k, p, tid=i) for i, (k, p) in enumerate(specs)]
    engine.run_batch(batch)
    return db, batch


@given(mixed_batches())
@settings(max_examples=60, deadline=None)
def test_ltpg_matches_aria_exactly(specs):
    db_l, batch_l = run_ltpg(specs)
    db_a, batch_a = run_aria(specs)
    assert [t.status for t in batch_l] == [t.status for t in batch_a]
    assert db_l.state_digest() == db_a.state_digest()


@given(mixed_batches())
@settings(max_examples=30, deadline=None)
def test_ltpg_without_reordering_commits_subset(specs):
    """Disabling reordering can only shrink the commit set."""
    from repro.txn import TxnStatus

    db, registry = build_bank(accounts=12)
    strict_cfg = LTPGConfig(batch_size=32).without_optimizations()
    engine = LTPGEngine(db, registry, strict_cfg)
    batch_strict = [Transaction(k, p, tid=i) for i, (k, p) in enumerate(specs)]
    engine.run_batch(batch_strict)

    _, batch_reorder = run_ltpg(specs)
    committed_strict = {
        t.tid for t in batch_strict if t.status is TxnStatus.COMMITTED
    }
    committed_reorder = {
        t.tid for t in batch_reorder if t.status is TxnStatus.COMMITTED
    }
    assert committed_strict <= committed_reorder


def test_explain_output():
    specs = [("transfer", (0, 1, 1)), ("transfer", (0, 2, 1)), ("bad", (3,))]
    db, registry = build_bank(accounts=12)
    engine = LTPGEngine(db, registry, LTPGConfig(batch_size=8))
    batch = [Transaction(k, p, tid=i) for i, (k, p) in enumerate(specs)]
    result = engine.run_batch(batch)
    text = result.explain()
    assert "committed tid=0 transfer" in text
    assert "aborted tid=1" in text
    assert "logic-aborted tid=2 bad" in text

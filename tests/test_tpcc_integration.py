"""LTPG on TPC-C: end-to-end integration, paper-shape assertions."""

from __future__ import annotations

import pytest

from repro.bench.common import ltpg_config
from repro.bench.runner import steady_state_baseline_run, steady_state_run
from repro.core import LTPGEngine
from repro.txn import BufferedContext, apply_local_sets, assign_tids
from repro.workloads.tpcc import TpccMix, build_tpcc


@pytest.fixture(scope="module")
def setup():
    return build_tpcc(warehouses=2, num_items=5000, seed=13)


def fresh_engine(db, registry, batch_size=256, optimized=True):
    config = ltpg_config(batch_size)
    if not optimized:
        config = config.without_optimizations()
    return LTPGEngine(db.copy(), registry, config)


class TestTpccEndToEnd:
    def test_mixed_batch_commits_and_updates_state(self, setup):
        db, registry, gen = setup
        engine = fresh_engine(db, registry)
        batch = gen.make_batch(256)
        assign_tids(batch, 0)
        result = engine.run_batch(batch)
        assert result.stats.committed > 0
        assert engine.database.table("orders").num_rows > 0
        assert engine.database.table("history").num_rows > 0

    def test_committed_equal_serial_witness_replay(self, setup):
        db, registry, gen = setup
        engine = fresh_engine(db, registry)
        batch = gen.make_batch(128)
        assign_tids(batch, 0)
        result = engine.run_batch(batch)
        reference = db.copy()
        by_tid = {t.tid: t for t in result.committed}
        for tid in result.serial_order():
            t = by_tid[tid]
            ctx = BufferedContext(reference)
            registry.get(t.procedure_name)(ctx, *t.params)
            apply_local_sets(reference, ctx.local)
        assert reference.state_digest() == engine.database.state_digest()

    def test_payment_collapse_without_optimizations(self, setup):
        db, registry, gen = setup
        opt = fresh_engine(db, registry, optimized=True)
        raw = fresh_engine(db, registry, optimized=False)
        batch = gen.make_batch(512)
        assign_tids(batch, 0)
        import copy

        r_opt = opt.run_batch([copy.deepcopy(t) for t in batch])
        r_raw = raw.run_batch([copy.deepcopy(t) for t in batch])
        pay_opt = r_opt.stats.commit_rate_of("payment")
        pay_raw = r_raw.stats.commit_rate_of("payment")
        # Table VI shape: Payment commits collapse to ~warehouses/batch
        # without the high-contention optimizations.
        assert pay_raw < 0.1
        assert pay_opt > 5 * pay_raw
        # NewOrder is stock-limited either way (roughly unchanged).
        no_opt = r_opt.stats.commit_rate_of("neworder")
        no_raw = r_raw.stats.commit_rate_of("neworder")
        assert abs(no_opt - no_raw) < 0.15

    def test_determinism_across_runs(self, setup):
        db, registry, gen = setup
        digests = []
        batch = gen.make_batch(128)
        for _ in range(2):
            engine = fresh_engine(db, registry)
            import copy

            b = [copy.deepcopy(t) for t in batch]
            assign_tids(b, 0)
            engine.run_batch(b)
            digests.append(engine.database.state_digest())
        assert digests[0] == digests[1]

    def test_w_ytd_conserved_under_delayed_updates(self, setup):
        """Every committed payment's amount lands in w_ytd exactly once."""
        db, registry, gen = build_tpcc(
            warehouses=2, num_items=5000, seed=13,
            mix=TpccMix.neworder_percentage(0),
        )
        engine = fresh_engine(db, registry)
        batch = gen.make_batch(200)
        assign_tids(batch, 0)
        before = sum(db.table("warehouse").read(w, "w_ytd") for w in range(2))
        result = engine.run_batch(batch)
        after = sum(
            engine.database.table("warehouse").read(w, "w_ytd") for w in range(2)
        )
        committed_amount = sum(t.params[3] for t in result.committed)
        assert after - before == committed_amount

    def test_steady_state_runner_tops_up_batches(self, setup):
        db, registry, gen = setup
        engine = fresh_engine(db, registry, batch_size=128)
        r = steady_state_run(engine, gen, 128, 4)
        assert r.run.num_batches == 4
        assert all(b.num_txns == 128 for b in r.run.batches)
        assert r.tps > 0

    def test_full_tpcc_mix_runs(self):
        db, registry, gen = build_tpcc(
            warehouses=2,
            num_items=2000,
            seed=5,
            mix=TpccMix(
                neworder=0.44,
                payment=0.44,
                orderstatus=0.04,
                stocklevel=0.04,
                delivery=0.04,
            ),
        )
        engine = LTPGEngine(db, registry, ltpg_config(256))
        r = steady_state_run(engine, gen, 256, 3)
        assert r.run.total_committed > 0
        # all five procedure types were admitted
        procs = set()
        for b in r.run.batches:
            procs |= set(b.total_by_proc)
        assert procs == {
            "neworder", "payment", "orderstatus", "stocklevel", "delivery",
        }

"""Hand-crafted protocol scenarios: exact schedule/rank/chain checks
for the baselines' cost machinery."""

from __future__ import annotations

import pytest

from helpers import build_bank, txn
from repro.baselines import (
    BohmEngine,
    CalvinEngine,
    Dbx1000Engine,
    GaccoEngine,
    GpuTxEngine,
    PwvEngine,
)
from repro.gpusim.config import CpuConfig


def prepared(txns):
    for i, t in enumerate(txns):
        t.tid = i
    return txns


class TestCalvinExactSchedule:
    def test_independent_txns_use_parallel_cores(self):
        """Two disjoint transfers: the makespan equals one transaction's
        execution time (plus lock-manager serial grants), not two."""
        db, registry = build_bank(accounts=8)
        engine = CalvinEngine(db, registry)
        one = engine.run_batch(prepared([txn("transfer", 0, 1, 1)]))
        db2, registry2 = build_bank(accounts=8)
        engine2 = CalvinEngine(db2, registry2)
        two = engine2.run_batch(
            prepared([txn("transfer", 0, 1, 1), txn("transfer", 2, 3, 1)])
        )
        # the second disjoint txn adds only lock-manager grant time
        exec_ns = 4 * engine.exec_op_ns  # 4 ops per transfer
        assert two.latency_ns - one.latency_ns < exec_ns

    def test_chained_txns_serialize_fully(self):
        """Transfers on the same accounts: makespan grows by a whole
        transaction per link."""
        db, registry = build_bank(accounts=8)
        engine = CalvinEngine(db, registry)
        n = 4
        stats = engine.run_batch(
            prepared([txn("transfer", 0, 1, 1) for _ in range(n)])
        )
        per_txn = 4 * engine.exec_op_ns + engine.cpu.txn_overhead_ns
        assert stats.latency_ns >= n * per_txn

    def test_readers_share_locks(self):
        db, registry = build_bank(accounts=8)
        engine = CalvinEngine(db, registry)
        readers = engine.run_batch(
            prepared([txn("audit", 0, 1) for _ in range(8)])
        )
        db2, registry2 = build_bank(accounts=8)
        writers = CalvinEngine(db2, registry2).run_batch(
            prepared([txn("transfer", 0, 1, 1) for _ in range(8)])
        )
        assert readers.latency_ns < writers.latency_ns


class TestGpuTxRanks:
    def count_rounds(self, txns):
        db, registry = build_bank(accounts=32)
        engine = GpuTxEngine(db, registry)
        stats = engine.run_batch(prepared(txns))
        # rounds are observable through the execute-phase cost: each
        # round pays a kernel launch
        launches = stats.phase_ns["execute"] / engine.device.config.kernel_launch_ns
        return stats, launches

    def test_disjoint_batch_single_round(self):
        stats, launches = self.count_rounds(
            [txn("transfer", 2 * i, 2 * i + 1, 1) for i in range(4)]
        )
        stats2, launches2 = self.count_rounds(
            [txn("transfer", 0, 1, 1) for _ in range(4)]
        )
        assert launches2 > launches  # chained batch needs more rounds

    def test_reader_chains_count(self):
        # readers of a written item rank after the writer
        stats, launches = self.count_rounds(
            [txn("transfer", 0, 1, 1), txn("audit", 0, 1)]
        )
        stats1, launches1 = self.count_rounds([txn("audit", 0, 1), txn("audit", 0, 1)])
        assert launches > launches1


class TestPwvChains:
    def test_fragment_chain_bounds_makespan(self):
        db, registry = build_bank(accounts=64)
        engine = PwvEngine(db, registry)
        hot = engine.run_batch(prepared([txn("transfer", 0, 1, 1) for _ in range(16)]))
        db2, registry2 = build_bank(accounts=64)
        cold = PwvEngine(db2, registry2).run_batch(
            prepared([txn("transfer", 2 * i, 2 * i + 1, 1) for i in range(16)])
        )
        delta = hot.latency_ns - cold.latency_ns
        # chain of 16 writers advances one *fragment* at a time
        assert delta >= 10 * engine.fragment_ns
        # ... which is far cheaper than Calvin's whole-transaction chain
        db3, registry3 = build_bank(accounts=64)
        calvin_hot = CalvinEngine(db3, registry3).run_batch(
            prepared([txn("transfer", 0, 1, 1) for _ in range(16)])
        )
        assert hot.latency_ns < calvin_hot.latency_ns


class TestDbxWindowSimulation:
    def engine(self, cores=4):
        db, registry = build_bank(accounts=64)
        eng = Dbx1000Engine(db, registry, cpu=CpuConfig(num_cores=cores))
        return eng

    def test_disjoint_no_retries(self):
        eng = self.engine()
        txns = prepared([txn("transfer", 2 * i, 2 * i + 1, 1) for i in range(8)])
        for t in txns:
            t.reset_for_execution()
        # execute to populate ops, then simulate
        eng.run_batch(txns)
        retried, wasted = eng._simulate_interleaving(txns)
        assert retried == 0
        assert wasted == 0

    def test_hot_writers_retry_within_window(self):
        eng = self.engine(cores=8)
        txns = prepared([txn("transfer", 0, 1, 1) for _ in range(8)])
        eng.run_batch(txns)
        retried, wasted = eng._simulate_interleaving(txns)
        assert retried > 0
        assert wasted >= retried  # each retry wastes at least its ops

    def test_retries_bounded(self):
        eng = self.engine(cores=8)
        txns = prepared([txn("transfer", 0, 1, 1) for _ in range(8)])
        eng.run_batch(txns)
        retried, _ = eng._simulate_interleaving(txns)
        assert retried <= len(txns) * eng.max_retries

    def test_wider_window_more_conflicts(self):
        narrow = self.engine(cores=2)
        txns_a = prepared([txn("transfer", 0, 1, 1) for _ in range(12)])
        narrow.run_batch(txns_a)
        r_narrow, _ = narrow._simulate_interleaving(txns_a)
        wide = self.engine(cores=12)
        txns_b = prepared([txn("transfer", 0, 1, 1) for _ in range(12)])
        wide.run_batch(txns_b)
        r_wide, _ = wide._simulate_interleaving(txns_b)
        assert r_wide >= r_narrow


class TestBohmPartitions:
    def test_partitioned_phase1_scales_with_hottest_partition(self):
        db, registry = build_bank(accounts=64)
        few_cores = BohmEngine(db, registry, cpu=CpuConfig(num_cores=2))
        txns = prepared([txn("deposit", i % 4, 1) for i in range(16)])
        stats = few_cores.run_batch(txns)
        assert stats.committed == 16
        assert stats.latency_ns > 0


class TestGaccoAccessTable:
    def test_preprocess_cost_scales_with_ops(self):
        db, registry = build_bank(accounts=64)
        small = GaccoEngine(db, registry).run_batch(
            prepared([txn("deposit", i, 1) for i in range(4)])
        )
        db2, registry2 = build_bank(accounts=64)
        large = GaccoEngine(db2, registry2).run_batch(
            prepared([txn("deposit", i % 32, 1) for i in range(64)])
        )
        assert large.phase_ns["preprocess"] > small.phase_ns["preprocess"]

    def test_dirty_row_sync_scales_transfer(self):
        db, registry = build_bank(accounts=128)
        narrow = GaccoEngine(db, registry).run_batch(
            prepared([txn("deposit", 0, 1) for _ in range(32)])
        )
        db2, registry2 = build_bank(accounts=128)
        wide = GaccoEngine(db2, registry2).run_batch(
            prepared([txn("deposit", i, 1) for i in range(32)])
        )
        # 32 distinct dirty rows ship more than 1 dirty row
        assert wide.transfer_ns > narrow.transfer_ns

"""Focused tests for smaller surfaces: profiler queries, reporting,
memory-mode factors, error hierarchy, kernel stats merging."""

from __future__ import annotations

import pytest

from repro import errors
from repro.bench.reporting import _fmt, format_table
from repro.core import LTPGConfig, MemoryMode
from repro.core.memory_modes import MemoryPlan, transfer_latency_factor
from repro.gpusim import Device, DeviceConfig, KernelStats
from repro.gpusim.profiler import Profiler, TimelineEntry


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for name in (
            "DeviceError",
            "OutOfDeviceMemory",
            "StorageError",
            "KeyNotFound",
            "DuplicateKey",
            "TransactionError",
            "TransactionAborted",
            "WorkloadError",
            "BenchmarkError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_specialization(self):
        assert issubclass(errors.OutOfDeviceMemory, errors.DeviceError)
        assert issubclass(errors.KeyNotFound, errors.StorageError)
        assert issubclass(errors.TransactionAborted, errors.TransactionError)


class TestProfiler:
    def test_by_kernel_and_filters(self):
        p = Profiler()
        p.record(TimelineEntry("kernel", "execute", "s0", 0, 10))
        p.record(TimelineEntry("kernel", "execute", "s0", 10, 5))
        p.record(TimelineEntry("kernel", "conflict", "s0", 15, 2))
        p.record(TimelineEntry("transfer", "params:h2d", "s0", 17, 3))
        assert p.by_kernel() == {"execute": 15, "conflict": 2}
        assert p.transfer_ns() == 3
        assert p.total_ns(kind="kernel", name_prefix="exec") == 15
        assert p.total_ns() == 20

    def test_last_kernel_stats(self):
        p = Profiler()
        from repro.gpusim.costmodel import KernelTiming

        timing = KernelTiming(1, 1, 0, 0, 0)
        p.record_kernel(KernelStats(name="a", instructions=1), timing)
        p.record_kernel(KernelStats(name="b", instructions=2), timing)
        p.record_kernel(KernelStats(name="a", instructions=3), timing)
        assert p.last_kernel_stats("a").instructions == 3
        assert p.last_kernel_stats("zzz") is None

    def test_entry_end(self):
        e = TimelineEntry("kernel", "k", "s", 5.0, 2.5)
        assert e.end_ns == 7.5


class TestKernelStatsMerge:
    def test_merge_accumulates(self):
        a = KernelStats(threads=10, instructions=5, atomic_max_chain=3)
        b = KernelStats(threads=20, instructions=7, atomic_max_chain=2,
                        um_page_faults=4)
        a.merge(b)
        assert a.threads == 20
        assert a.instructions == 12
        assert a.atomic_max_chain == 3
        assert a.um_page_faults == 4


class TestReportingFormat:
    def test_fmt_rules(self):
        assert _fmt(0.0) == "0"
        assert _fmt(12345.6) == "12,346"
        assert _fmt(42.42) == "42.4"
        assert _fmt(1.234) == "1.23"
        assert _fmt("abc") == "abc"

    def test_table_with_note(self):
        text = format_table("T", ["a"], [[1]], note="hello")
        assert text.endswith("hello")


class TestMemoryModeFactors:
    def plan(self, mode):
        return MemoryPlan(mode=mode, snapshot_bytes=1, device_capacity=10)

    def test_zero_copy_discounts_latency(self):
        assert transfer_latency_factor(self.plan(MemoryMode.ZERO_COPY)) < 1.0

    def test_other_modes_full_latency(self):
        assert transfer_latency_factor(self.plan(MemoryMode.DEVICE)) == 1.0
        assert transfer_latency_factor(self.plan(MemoryMode.UNIFIED)) == 1.0

    def test_resident_property(self):
        assert self.plan(MemoryMode.DEVICE).snapshot_resident
        assert self.plan(MemoryMode.ZERO_COPY).snapshot_resident
        assert not self.plan(MemoryMode.UNIFIED).snapshot_resident


class TestDeviceConfigValidation:
    def test_transfer_edge_cases(self):
        cfg = DeviceConfig()
        assert cfg.transfer_ns(0) == 0.0
        with pytest.raises(errors.DeviceError):
            cfg.transfer_ns(-1)

    def test_invalid_geometry(self):
        import dataclasses

        with pytest.raises(errors.DeviceError):
            dataclasses.replace(DeviceConfig(), num_sms=0)
        with pytest.raises(errors.DeviceError):
            dataclasses.replace(DeviceConfig(), max_threads_per_block=100)

    def test_total_lanes(self):
        cfg = DeviceConfig()
        assert cfg.total_lanes == cfg.num_sms * cfg.lanes_per_sm


class TestStreamBusyAccounting:
    def test_busy_vs_elapsed(self):
        device = Device()
        s = device.stream("s")
        s.enqueue(10.0)
        s.enqueue(5.0, not_before_ns=100.0)  # idle gap
        assert s.busy_ns == 15.0
        assert s.time_ns == 105.0


class TestConfigReplacement:
    def test_memory_mode_enum_values(self):
        assert MemoryMode("device") is MemoryMode.DEVICE
        assert {m.value for m in MemoryMode} == {
            "device", "zero_copy", "unified", "auto",
        }

    def test_config_frozen(self):
        config = LTPGConfig()
        with pytest.raises(AttributeError):
            config.batch_size = 5

"""Workloads: random helpers, TPC-C, YCSB."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LTPGConfig, LTPGEngine
from repro.errors import WorkloadError
from repro.txn import BufferedContext, assign_tids
from repro.workloads import ZipfGenerator, nurand
from repro.workloads.tpcc import (
    DELAYED_COLUMNS,
    TpccGenerator,
    TpccMix,
    TpccScale,
    build_tpcc,
    tpcc_nbytes,
)
from repro.workloads.ycsb import WORKLOADS, build_ycsb, ycsb_delayed_columns


class TestRandHelpers:
    def test_nurand_in_range(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            v = nurand(rng, 1023, 1, 3000)
            assert 1 <= v <= 3000

    def test_nurand_invalid_a(self):
        with pytest.raises(WorkloadError):
            nurand(np.random.default_rng(0), 7, 1, 10)

    def test_zipf_bounds_and_skew(self):
        z = ZipfGenerator(1000, 2.5)
        rng = np.random.default_rng(1)
        sample = z.sample(rng, 10_000)
        assert sample.min() >= 0 and sample.max() < 1000
        # alpha=2.5: the top key dominates (paper's high-contention mode)
        assert (sample == 0).mean() > 0.5

    def test_zipf_zero_alpha_uniformish(self):
        z = ZipfGenerator(100, 0.0)
        rng = np.random.default_rng(1)
        sample = z.sample(rng, 20_000)
        counts = np.bincount(sample, minlength=100)
        assert counts.min() > 100  # roughly uniform

    def test_zipf_invalid(self):
        with pytest.raises(WorkloadError):
            ZipfGenerator(0, 1.0)
        with pytest.raises(WorkloadError):
            ZipfGenerator(10, -1.0)

    def test_zipf_deterministic_given_seed(self):
        z = ZipfGenerator(50, 1.2)
        a = z.sample(np.random.default_rng(7), 100)
        b = z.sample(np.random.default_rng(7), 100)
        assert (a == b).all()


class TestTpccSchemaAndLoader:
    def test_scale_key_encodings_unique(self):
        scale = TpccScale(warehouses=3, num_items=100)
        keys = {
            scale.customer_key(w, d, c)
            for w in range(3)
            for d in range(10)
            for c in range(5)
        }
        assert len(keys) == 3 * 10 * 5
        assert scale.stock_key(2, 99) == 2 * 100 + 99

    def test_loader_row_counts(self, tiny_tpcc):
        db, _, _ = tiny_tpcc
        assert db.table("warehouse").num_rows == 2
        assert db.table("district").num_rows == 20
        assert db.table("customer").num_rows == 60_000
        assert db.table("stock").num_rows == 4_000
        assert db.table("item").num_rows == 2_000
        assert db.table("orders").num_rows == 0

    def test_nbytes_estimate_matches_loaded(self, tiny_tpcc):
        db, _, _ = tiny_tpcc
        estimate = tpcc_nbytes(TpccScale(warehouses=2, num_items=2000))
        assert estimate == db.nbytes

    def test_secondary_indexes_present(self, tiny_tpcc):
        db, _, _ = tiny_tpcc
        assert "o_c_key" in db.table("orders").secondary
        assert "no_d_key" in db.table("new_order").secondary


class TestTpccGenerator:
    def test_mix_fractions_validated(self):
        with pytest.raises(WorkloadError):
            TpccMix(neworder=0.9, payment=0.3)

    def test_neworder_percentage(self):
        mix = TpccMix.neworder_percentage(100)
        assert mix.neworder == 1.0 and mix.payment == 0.0

    def test_batch_respects_mix(self):
        scale = TpccScale(warehouses=2, num_items=1000)
        gen = TpccGenerator(scale, mix=TpccMix.neworder_percentage(0), seed=3)
        batch = gen.make_batch(50)
        assert all(t.procedure_name == "payment" for t in batch)

    def test_deterministic_given_seed(self):
        scale = TpccScale(warehouses=2, num_items=1000)
        a = TpccGenerator(scale, seed=5).make_batch(20)
        b = TpccGenerator(scale, seed=5).make_batch(20)
        assert [t.params for t in a] == [t.params for t in b]

    def test_order_ids_unique_across_batches(self):
        scale = TpccScale(warehouses=2, num_items=1000)
        gen = TpccGenerator(scale, mix=TpccMix.neworder_percentage(100), seed=5)
        ids = [t.params[3] for t in gen.make_batch(30) + gen.make_batch(30)]
        assert len(set(ids)) == len(ids)

    def test_invalid_batch_size(self):
        gen = TpccGenerator(TpccScale(2, 100))
        with pytest.raises(WorkloadError):
            gen.make_batch(0)


class TestTpccProcedures:
    def test_neworder_effects(self, tiny_tpcc):
        db, registry, _ = tiny_tpcc
        ctx = BufferedContext(db)
        scale = TpccScale(warehouses=2, num_items=2000)
        s_key = scale.stock_key(0, 10)
        before = db.table("stock").read(db.table("stock").lookup(s_key), "s_quantity")
        registry.get("neworder")(ctx, 0, 0, scale.customer_key(0, 0, 5), 999, 0, 10, 3)
        from repro.txn import apply_local_sets

        apply_local_sets(db, ctx.local)
        stock = db.table("stock")
        after = stock.read(stock.lookup(s_key), "s_quantity")
        assert after in (before - 3, before - 3 + 91)
        assert stock.read(stock.lookup(s_key), "s_ytd") == 3
        assert db.table("orders").get_row(999) is not None
        assert db.table("new_order").get_row(999) is not None

    def test_neworder_rollback_flag(self, tiny_tpcc):
        db, registry, _ = tiny_tpcc
        from repro.errors import TransactionAborted

        ctx = BufferedContext(db)
        with pytest.raises(TransactionAborted):
            registry.get("neworder")(ctx, 0, 0, 5, 998, 1, 10, 3)

    def test_payment_effects(self, tiny_tpcc):
        db, registry, _ = tiny_tpcc
        scale = TpccScale(warehouses=2, num_items=2000)
        c_key = scale.customer_key(1, 2, 7)
        ctx = BufferedContext(db)
        registry.get("payment")(ctx, 1, 2, c_key, 250, 12345)
        from repro.txn import apply_local_sets

        w_before = db.table("warehouse").read(1, "w_ytd")
        apply_local_sets(db, ctx.local)
        assert db.table("warehouse").read(1, "w_ytd") == w_before + 250
        cust = db.table("customer")
        assert cust.read(cust.lookup(c_key), "c_balance") == -1000 - 250
        assert db.table("history").get_row(12345) is not None

    def test_orderstatus_reads_latest_order(self, tiny_tpcc):
        db, registry, _ = tiny_tpcc
        scale = TpccScale(warehouses=2, num_items=2000)
        c_key = scale.customer_key(0, 0, 1)
        ctx = BufferedContext(db)
        registry.get("neworder")(ctx, 0, 0, c_key, 777, 0, 4, 2)
        from repro.txn import apply_local_sets

        apply_local_sets(db, ctx.local)
        ctx2 = BufferedContext(db)
        registry.get("orderstatus")(ctx2, c_key)
        assert len(ctx2.ops) >= 3  # customer + header + lines

    def test_stocklevel_counts(self, tiny_tpcc):
        db, registry, _ = tiny_tpcc
        ctx = BufferedContext(db)
        registry.get("stocklevel")(ctx, 0, 15, 1, 2, 3)
        assert len(ctx.ops) == 3

    def test_delivery_updates_customer(self, tiny_tpcc):
        db, registry, _ = tiny_tpcc
        scale = TpccScale(warehouses=2, num_items=2000)
        c_key = scale.customer_key(0, 0, 2)
        ctx = BufferedContext(db)
        registry.get("neworder")(ctx, 0, 0, c_key, 555, 0, 9, 1)
        from repro.txn import apply_local_sets

        apply_local_sets(db, ctx.local)
        ctx2 = BufferedContext(db)
        registry.get("delivery")(ctx2, 0, 3, 555)
        apply_local_sets(db, ctx2.local)
        orders = db.table("orders")
        assert orders.read(orders.lookup(555), "o_carrier_id") == 3
        cust = db.table("customer")
        assert cust.read(cust.lookup(c_key), "c_delivery_cnt") == 1


class TestYcsb:
    def test_build_and_run_workload_a(self):
        db, registry, gen = build_ycsb(2000, workload="a", seed=3)
        config = LTPGConfig(
            batch_size=64, delayed_columns=ycsb_delayed_columns()
        )
        engine = LTPGEngine(db, registry, config)
        batch = gen.make_batch(64)
        assign_tids(batch, 0)
        result = engine.run_batch(batch)
        # commutative updates + field-separated reads: everything commits
        assert result.stats.committed == 64

    def test_update_contention_without_commutativity(self):
        db, registry, gen = build_ycsb(
            2000, workload="a", seed=3, commutative_updates=False
        )
        engine = LTPGEngine(db, registry, LTPGConfig(batch_size=64))
        batch = gen.make_batch(64)
        assign_tids(batch, 0)
        result = engine.run_batch(batch)
        # alpha=2.5 focuses RMWs on the hottest key: most txns abort
        assert result.stats.committed < 16

    def test_workload_c_read_only(self):
        db, registry, gen = build_ycsb(1000, workload="c", seed=3)
        batch = gen.make_batch(20)
        codes = {p for t in batch for p in t.params[::2]}
        assert codes == {0}

    def test_workload_e_scans(self):
        db, registry, gen = build_ycsb(1000, workload="e", seed=3)
        batch = gen.make_batch(20)
        codes = {p for t in batch for p in t.params[::2]}
        assert 3 in codes
        engine = LTPGEngine(db, registry, LTPGConfig(batch_size=20))
        assign_tids(batch, 0)
        result = engine.run_batch(batch)
        assert result.stats.committed == 20

    def test_workload_d_inserts_fresh_keys(self):
        db, registry, gen = build_ycsb(500, workload="d", seed=3)
        batch = gen.make_batch(50)
        inserted = [
            t.params[2 * j + 1]
            for t in batch
            for j in range(len(t.params) // 2)
            if t.params[2 * j] == 2
        ]
        assert inserted, "workload D must insert"
        assert all(k >= 500 for k in inserted)
        assert len(set(inserted)) == len(inserted)

    def test_unknown_workload(self):
        with pytest.raises(WorkloadError):
            build_ycsb(1000, workload="z")

    def test_scan_length_bound(self):
        with pytest.raises(WorkloadError):
            build_ycsb(5, workload="e")

    def test_all_five_workloads_defined(self):
        assert set(WORKLOADS) == {"a", "b", "c", "d", "e"}

"""Property-based tests (Hypothesis) on core data structures and the
engine's serializability/determinism invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import build_bank, txn
from repro.core import ConflictFlags, LTPGConfig, LTPGEngine, commit_mask, logical_order
from repro.gpusim.atomics import collision_profile
from repro.storage import Table, make_schema
from repro.txn import (
    BatchScheduler,
    BufferedContext,
    Transaction,
    TxnStatus,
    apply_local_sets,
)
from repro.workloads import ZipfGenerator


# ---------------------------------------------------------------------------
# collision_profile
# ---------------------------------------------------------------------------
@given(st.lists(st.integers(min_value=-(10**12), max_value=10**12), max_size=200))
def test_collision_profile_matches_bruteforce(addresses):
    arr = np.asarray(addresses, dtype=np.int64)
    total, serialized, chain = collision_profile(arr)
    assert total == len(addresses)
    if addresses:
        counts = {}
        for a in addresses:
            counts[a] = counts.get(a, 0) + 1
        assert chain == max(counts.values())
        assert serialized == sum(c - 1 for c in counts.values())
    else:
        assert (serialized, chain) == (0, 0)


# ---------------------------------------------------------------------------
# commit rule
# ---------------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(st.booleans(), st.booleans(), st.booleans()),
        min_size=1,
        max_size=64,
    ),
    st.booleans(),
)
def test_commit_mask_invariants(flag_rows, reorder):
    waw = np.array([r[0] for r in flag_rows])
    raw = np.array([r[1] for r in flag_rows])
    war = np.array([r[2] for r in flag_rows])
    mask = commit_mask(ConflictFlags(waw, raw, war), reorder)
    for i in range(len(flag_rows)):
        if waw[i]:
            assert not mask[i], "WAW must always abort"
        if not waw[i] and not raw[i] and not war[i]:
            assert mask[i], "conflict-free must always commit"
        if mask[i] and not reorder:
            assert not raw[i], "without reordering RAW must abort"
        if mask[i] and reorder:
            assert not (raw[i] and war[i]), "RAW+WAR must abort"
    # reordering only ever commits MORE transactions
    strict = commit_mask(ConflictFlags(waw, raw, war), False)
    relaxed = commit_mask(ConflictFlags(waw, raw, war), True)
    assert (relaxed | ~strict).all()


# ---------------------------------------------------------------------------
# logical order witness
# ---------------------------------------------------------------------------
@st.composite
def committed_sets(draw):
    """Random (tid, reads, writes) lists with unique writers per key."""
    n = draw(st.integers(1, 12))
    keys = list(range(draw(st.integers(1, 8))))
    used_writers: dict[int, int] = {}
    out = []
    for tid in range(n):
        reads = set(draw(st.lists(st.sampled_from(keys), max_size=4)))
        writes = set()
        for k in draw(st.lists(st.sampled_from(keys), max_size=2)):
            if k not in used_writers:
                used_writers[k] = tid
                writes.add(k)
        out.append((tid, reads - writes, writes))
    return out


@given(committed_sets())
def test_logical_order_places_readers_before_writers(committed):
    try:
        order = logical_order(committed)
    except ValueError:
        # a genuine cycle: only possible if the commit rule was violated
        # by construction; the generator can produce reader/writer knots
        # equivalent to RAW+WAR, which the engine would have aborted.
        return
    position = {tid: i for i, tid in enumerate(order)}
    writer_of = {}
    for tid, _, writes in committed:
        for k in writes:
            writer_of[k] = tid
    for tid, reads, _ in committed:
        for k in reads:
            w = writer_of.get(k)
            if w is not None and w != tid:
                assert position[tid] < position[w]


# ---------------------------------------------------------------------------
# Zipf generator
# ---------------------------------------------------------------------------
@given(
    st.integers(min_value=2, max_value=500),
    st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
)
@settings(max_examples=25)
def test_zipf_samples_in_domain(n, alpha):
    z = ZipfGenerator(n, alpha)
    sample = z.sample(np.random.default_rng(0), 64)
    assert sample.min() >= 0
    assert sample.max() < n


# ---------------------------------------------------------------------------
# Table model check
# ---------------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(st.integers(0, 50), st.integers(-100, 100)),
        max_size=40,
    )
)
def test_table_against_dict_model(entries):
    table = Table(make_schema("t", "id", "v"), capacity=2)
    model: dict[int, int] = {}
    for key, value in entries:
        if key in model:
            table.write(table.lookup(key), "v", value)
        else:
            table.insert(key, {"v": value})
        model[key] = value
    for key, value in model.items():
        assert table.read(table.lookup(key), "v") == value
    assert table.num_rows == len(model)


# ---------------------------------------------------------------------------
# Scheduler conservation
# ---------------------------------------------------------------------------
@given(st.integers(1, 16), st.integers(1, 40), st.integers(1, 3))
@settings(max_examples=30)
def test_scheduler_never_loses_transactions(batch_size, n, delay):
    scheduler = BatchScheduler(batch_size, retry_delay_batches=delay)
    scheduler.admit([txn("p") for _ in range(n)])
    seen: list[int] = []
    guard = 0
    while scheduler.has_work() and guard < 200:
        batch = scheduler.next_batch()
        seen.extend(t.tid for t in batch)
        guard += 1
    assert sorted(seen) == list(range(n))


# ---------------------------------------------------------------------------
# Engine: determinism + serializability on random bank batches
# ---------------------------------------------------------------------------
@st.composite
def bank_batches(draw):
    n = draw(st.integers(1, 24))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["transfer", "deposit", "audit"]))
        a = draw(st.integers(0, 15))
        b = draw(st.integers(0, 15))
        if kind == "transfer":
            ops.append(("transfer", (a, b if b != a else (a + 1) % 16, 1 + a % 5)))
        elif kind == "deposit":
            ops.append(("deposit", (a, 1 + b % 7)))
        else:
            ops.append(("audit", (a, b)))
    return ops


def _run_once(specs):
    db, registry = build_bank(accounts=16)
    engine = LTPGEngine(db, registry, LTPGConfig(batch_size=32))
    batch = [Transaction(name, params, tid=i) for i, (name, params) in enumerate(specs)]
    result = engine.run_batch(batch)
    return db, registry, batch, result


@given(bank_batches())
@settings(max_examples=40, deadline=None)
def test_engine_is_deterministic(specs):
    db1, _, batch1, _ = _run_once(specs)
    db2, _, batch2, _ = _run_once(specs)
    assert [t.status for t in batch1] == [t.status for t in batch2]
    assert db1.state_digest() == db2.state_digest()


@given(bank_batches())
@settings(max_examples=40, deadline=None)
def test_engine_commits_are_serializable(specs):
    db, registry, batch, result = _run_once(specs)
    reference, _ = build_bank(accounts=16)
    by_tid = {t.tid: t for t in result.committed}
    for tid in result.serial_order():
        t = by_tid[tid]
        ctx = BufferedContext(reference)
        registry.get(t.procedure_name)(ctx, *t.params)
        apply_local_sets(reference, ctx.local)
    assert reference.state_digest() == db.state_digest()


@given(bank_batches())
@settings(max_examples=20, deadline=None)
def test_transfer_money_is_conserved(specs):
    db, _, batch, _ = _run_once(specs)
    table = db.table("accounts")
    total = sum(table.read(r, "balance") for r in range(table.num_rows))
    deposits = sum(
        t.params[1]
        for t in batch
        if t.procedure_name == "deposit" and t.status is TxnStatus.COMMITTED
    )
    assert total == 16 * 1000 + deposits

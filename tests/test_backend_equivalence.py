"""Cross-backend byte-identity for the batched executor.

The whole point of the ``repro.xp`` shim is that swapping the array
backend changes *where* the batched twins compute and nothing else.
These tests run identical batch specs through ``array_backend="numpy"``
(the pinned reference) and ``array_backend="mockgpu"`` (the device
contract checker) and compare the full observable surface byte for
byte — statuses, abort reasons, per-transaction op streams, simulated
phase times, and the final database digest — on TPC-C (full procedure
mix), YCSB (delayed deltas, B-tree scans) and SmallBank, at the paper's
small (2^10) and headline (2^14) batch sizes.

Riding along, because they are cheapest to assert right here:

* the mockgpu device contract — zero implicit host round-trips inside
  the execute/conflict/writeback kernel phases, zero float upcasts
  (the mechanical dtype-discipline audit);
* the numpy backend's zero-transfer contract;
* ``LTPGConfig.array_backend`` validation (unknown names, incompatible
  feature combinations) and the engine's backend re-resolution when the
  config changes after construction;
* the ``transfer.*`` metrics surfaced through the observability stack.
"""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.core import LTPGConfig, LTPGEngine
from repro.errors import ConfigError
from repro.txn import Transaction
from repro.workloads.smallbank import build_smallbank
from repro.workloads.tpcc import DELAYED_COLUMNS, SPLIT_COLUMNS, TpccMix, build_tpcc
from repro.workloads.ycsb import build_ycsb
from repro.workloads.ycsb.generator import ycsb_delayed_columns

pytestmark = pytest.mark.backend

FULL_MIX = TpccMix(
    neworder=0.4, payment=0.3, orderstatus=0.1, stocklevel=0.1, delivery=0.1
)

SMALL_BATCH = 1024  # 2^10
HEADLINE_BATCH = 16_384  # 2^14, the paper's headline batch


def _maybe_resident(config: LTPGConfig) -> LTPGConfig:
    """CI hook: ``LTPG_DEVICE_RESIDENT=1`` reruns the whole equivalence
    suite with device-resident table residency pinned on, so every
    byte-identity assertion here doubles as a residency-coherence check
    (residency is inert on the numpy reference by construction)."""
    if os.environ.get("LTPG_DEVICE_RESIDENT") == "1":
        return dataclasses.replace(config, device_resident=True)
    return config


def _observe(engine, batches):
    """Run ``batches`` (lists of (name, params) specs) and capture every
    path-sensitive observable (mirrors test_batched_equivalence.py)."""
    out = []
    for specs in batches:
        batch = [Transaction(n, p, tid=i) for i, (n, p) in enumerate(specs)]
        result = engine.run_batch(batch)
        out.append(
            {
                "committed": result.stats.committed,
                "aborted": result.stats.aborted,
                "logic_aborted": result.stats.logic_aborted,
                "statuses": [t.status for t in batch],
                "reasons": [t.abort_reason for t in batch],
                "ops": [t.ops.raw for t in batch],
                "phase_ns": dict(result.stats.phase_ns),
                "rwset_ns": result.stats.rwset_ns,
                "abort_reasons": dict(result.stats.abort_reasons),
                "by_proc": dict(result.stats.committed_by_proc),
            }
        )
    out.append(engine.database.state_digest())
    return out


def _pairwise_identical(build, batches):
    """Assert numpy == mockgpu on fresh engines; return the mockgpu
    engine's backend for contract assertions."""
    runs, mock_backend = {}, None
    for name in ("numpy", "mockgpu"):
        engine = build(name)
        runs[name] = _observe(engine, batches)
        backend = engine._ensure_backend()
        if name == "mockgpu":
            mock_backend = backend
            t = backend.transfer_stats()
            # the device contract: every host round-trip inside a kernel
            # phase went through an explicit crossing, and nothing in the
            # hot path silently upcast to float (the dtype audit)
            assert t.implicit_syncs == 0
            assert backend.upcasts == []
            assert t.h2d_count > 0 and t.d2h_count > 0  # real traffic flowed
        else:
            # the reference backend has no device: its ledger stays zero
            assert all(
                v == 0 for v in backend.transfer_stats().snapshot().values()
            )
    assert runs["mockgpu"] == runs["numpy"]
    return mock_backend


# ---------------------------------------------------------------------------
# TPC-C: full procedure mix, paper optimizations on, both batch sizes
# ---------------------------------------------------------------------------
def _tpcc_case(batch_size, n_batches):
    _, _, gen = build_tpcc(warehouses=2, num_items=2000, mix=FULL_MIX, seed=7)
    batches = [
        [(t.procedure_name, t.params) for t in gen.make_batch(batch_size)]
        for _ in range(n_batches)
    ]

    def build(backend):
        db, registry, _ = build_tpcc(
            warehouses=2, num_items=2000, mix=FULL_MIX, seed=7
        )
        config = LTPGConfig(
            batch_size=batch_size,
            columnar_ops=True,
            batched_exec=True,
            delayed_update=True,
            delayed_columns=DELAYED_COLUMNS,
            split_flags=True,
            split_columns=SPLIT_COLUMNS,
            array_backend=backend,
        )
        return LTPGEngine(db, registry, _maybe_resident(config))

    return build, batches


def test_tpcc_small_batch_identical_across_backends():
    build, batches = _tpcc_case(SMALL_BATCH, n_batches=2)
    _pairwise_identical(build, batches)


def test_tpcc_headline_batch_identical_across_backends():
    build, batches = _tpcc_case(HEADLINE_BATCH, n_batches=1)
    backend = _pairwise_identical(build, batches)
    # at the headline batch the paper's traffic shape holds: parameter
    # shipping (H2D) and read/write-set shipping (D2H) both scale with
    # the batch, so each direction moves at least batch_size * 8 bytes
    t = backend.transfer_stats()
    assert t.h2d_bytes > HEADLINE_BATCH * 8
    assert t.d2h_bytes > HEADLINE_BATCH * 8


# ---------------------------------------------------------------------------
# YCSB: RMW hazards, delayed deltas, B-tree range scans
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "ycsb_kwargs, delayed",
    [
        (dict(num_records=2000, workload="a", zipf_alpha=2.5, seed=11), True),
        (
            dict(
                num_records=2000,
                workload="e",
                zipf_alpha=0.9,
                seed=11,
                btree_scans=True,
            ),
            False,
        ),
    ],
    ids=["a-zipf25-delayed", "e-btree-ranges"],
)
def test_ycsb_identical_across_backends(ycsb_kwargs, delayed):
    _, _, gen = build_ycsb(**ycsb_kwargs)
    batches = [
        [(t.procedure_name, t.params) for t in gen.make_batch(SMALL_BATCH)]
        for _ in range(2)
    ]

    def build(backend):
        db, registry, _ = build_ycsb(**ycsb_kwargs)
        config = LTPGConfig(
            batch_size=SMALL_BATCH,
            columnar_ops=True,
            batched_exec=True,
            delayed_update=delayed,
            delayed_columns=ycsb_delayed_columns() if delayed else frozenset(),
            array_backend=backend,
        )
        return LTPGEngine(db, registry, _maybe_resident(config))

    _pairwise_identical(build, batches)


# ---------------------------------------------------------------------------
# SmallBank: six procedures, never-falling-back twins
# ---------------------------------------------------------------------------
def test_smallbank_identical_across_backends():
    _, _, gen = build_smallbank(num_accounts=500, zipf_alpha=1.2, seed=3)
    batches = [
        [(t.procedure_name, t.params) for t in gen.make_batch(SMALL_BATCH)]
        for _ in range(2)
    ]

    def build(backend):
        db, registry, _ = build_smallbank(num_accounts=500, zipf_alpha=1.2, seed=3)
        config = LTPGConfig(
            batch_size=SMALL_BATCH,
            columnar_ops=True,
            batched_exec=True,
            array_backend=backend,
        )
        return LTPGEngine(db, registry, _maybe_resident(config))

    _pairwise_identical(build, batches)


# ---------------------------------------------------------------------------
# Config validation matrix (array_backend x feature flags)
# ---------------------------------------------------------------------------
def _smallbank_engine(**config_kwargs):
    db, registry, _ = build_smallbank(num_accounts=100, zipf_alpha=1.2, seed=3)
    return LTPGEngine(db, registry, LTPGConfig(**config_kwargs))


@pytest.mark.parametrize(
    "kwargs, match",
    [
        (dict(array_backend="cuda"), "unknown"),
        (dict(array_backend="NUMPY"), "unknown"),  # names are case-sensitive
        (
            dict(array_backend="mockgpu", columnar_ops=True, batched_exec=False),
            "batched_exec",
        ),
        (
            dict(
                array_backend="mockgpu",
                columnar_ops=True,
                batched_exec=True,
                parallel_workers=2,
            ),
            "parallel_workers",
        ),
        (
            dict(
                array_backend="mockgpu",
                columnar_ops=True,
                batched_exec=True,
                sanitize=True,
            ),
            "sanitize",
        ),
    ],
    ids=[
        "unknown-name",
        "case-sensitive",
        "needs-batched-exec",
        "no-parallel-workers",
        "no-sanitize",
    ],
)
def test_invalid_backend_configs_raise_config_error(kwargs, match):
    with pytest.raises(ConfigError, match=match):
        LTPGConfig(batch_size=64, **kwargs)


def test_auto_backend_degrades_instead_of_raising():
    # "auto" accepts every feature combination: the engine resolves it
    # to numpy when the batched device path cannot run
    for kwargs in (
        dict(batched_exec=False),
        dict(columnar_ops=True, batched_exec=True, parallel_workers=2),
        dict(sanitize=True),
    ):
        engine = _smallbank_engine(batch_size=64, array_backend="auto", **kwargs)
        assert engine._ensure_backend().name == "numpy"


def test_explicit_numpy_accepts_every_mode():
    for kwargs in (dict(batched_exec=False), dict(sanitize=True)):
        engine = _smallbank_engine(batch_size=64, array_backend="numpy", **kwargs)
        assert engine._ensure_backend().name == "numpy"


# ---------------------------------------------------------------------------
# Backend invalidation: config swaps after construction re-resolve
# ---------------------------------------------------------------------------
def test_config_swap_invalidates_resolved_backend():
    _, _, gen = build_smallbank(num_accounts=100, zipf_alpha=1.2, seed=3)
    specs = [
        [(t.procedure_name, t.params) for t in gen.make_batch(128)]
        for _ in range(2)
    ]

    def fresh_engine(backend):
        db, registry, _ = build_smallbank(num_accounts=100, zipf_alpha=1.2, seed=3)
        config = LTPGConfig(
            batch_size=128, columnar_ops=True, batched_exec=True,
            array_backend=backend,
        )
        return LTPGEngine(db, registry, _maybe_resident(config))

    # reference: both batches on one numpy engine
    ref_engine = fresh_engine("numpy")
    expected = _observe(ref_engine, specs)

    # same batches, but the backend is swapped to mockgpu between them
    # (mirrors _ensure_pool: config mutation after construction re-resolves)
    engine = fresh_engine("numpy")
    first = _observe(engine, specs[:1])[:-1]
    assert engine._ensure_backend().name == "numpy"
    engine.config = dataclasses.replace(engine.config, array_backend="mockgpu")
    backend = engine._ensure_backend()
    assert backend.name == "mockgpu"
    second = _observe(engine, specs[1:])
    assert first + second == expected
    # the swapped-in backend really ran the second batch
    t = backend.transfer_stats()
    assert t.h2d_count > 0 and t.implicit_syncs == 0
    # swapping back re-resolves again (cache keyed on the config name)
    engine.config = dataclasses.replace(engine.config, array_backend="numpy")
    assert engine._ensure_backend().name == "numpy"


# ---------------------------------------------------------------------------
# Observability: transfer counters flow through metrics + trace config
# ---------------------------------------------------------------------------
def test_transfer_metrics_surface_under_mockgpu():
    db, registry, gen = build_smallbank(num_accounts=100, zipf_alpha=1.2, seed=3)
    config = LTPGConfig(
        batch_size=128, columnar_ops=True, batched_exec=True,
        array_backend="mockgpu", trace=True,
    )
    engine = LTPGEngine(db, registry, config)
    batch = [
        Transaction(t.procedure_name, t.params, tid=i)
        for i, t in enumerate(gen.make_batch(128))
    ]
    engine.run_batch(batch)
    snap = engine.metrics.snapshot()["counters"]
    ledger = engine._ensure_backend().transfer_stats()
    assert snap["transfer.h2d_bytes"] == ledger.h2d_bytes
    assert snap["transfer.d2h_bytes"] == ledger.d2h_bytes
    # the metric is a per-batch delta: it excludes the zero-byte
    # crossings conflict_log.set_backend makes at backend resolution,
    # which the lifetime ledger does count
    assert 0 < snap["transfer.count"] <= ledger.count


def test_no_transfer_metrics_under_numpy():
    db, registry, gen = build_smallbank(num_accounts=100, zipf_alpha=1.2, seed=3)
    config = LTPGConfig(
        batch_size=128, columnar_ops=True, batched_exec=True,
        array_backend="numpy", trace=True,
    )
    engine = LTPGEngine(db, registry, config)
    batch = [
        Transaction(t.procedure_name, t.params, tid=i)
        for i, t in enumerate(gen.make_batch(128))
    ]
    engine.run_batch(batch)
    # zero transfers -> the counter series is never created
    assert "transfer.count" not in engine.metrics.snapshot()["counters"]

"""Property tests: the conflict log against a brute-force dict oracle,
and bucket-geometry invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConflictLog, FlagGroups, HotspotDetector, NO_TID
from repro.core.hotspot import bucket_size_for
from repro.gpusim import DeviceConfig, KernelContext, LaunchGeometry
from repro.storage import Database, make_schema


def make_log(rows: int, hot: bool):
    db = Database()
    t = db.create_table(make_schema("t", "id", "a"))
    t.bulk_load(np.arange(rows), {})
    log = ConflictLog(db, FlagGroups(db))
    txns = rows * 4 if hot else 1
    heats = HotspotDetector(db).measure({0: txns})
    log.begin_batch(heats)
    return log


@st.composite
def op_streams(draw):
    rows = draw(st.integers(2, 20))
    n = draw(st.integers(0, 60))
    ops = [
        (
            draw(st.integers(0, rows - 1)),          # row
            draw(st.integers(0, 100)),               # tid
            draw(st.booleans()),                     # is_write
        )
        for _ in range(n)
    ]
    return rows, ops


@given(op_streams(), st.booleans())
@settings(max_examples=60, deadline=None)
def test_minima_match_dict_oracle(stream, hot):
    rows, ops = stream
    log = make_log(rows, hot)
    oracle_r: dict[int, int] = {}
    oracle_w: dict[int, int] = {}
    reads = [(r, t) for r, t, w in ops if not w]
    writes = [(r, t) for r, t, w in ops if w]
    for r, t in reads:
        oracle_r[r] = min(oracle_r.get(r, NO_TID), t)
    for r, t in writes:
        oracle_w[r] = min(oracle_w.get(r, NO_TID), t)

    def register(pairs, fn):
        if not pairs:
            return
        rows_arr = np.array([p[0] for p in pairs], dtype=np.int64)
        tids = np.array([p[1] for p in pairs], dtype=np.int64)
        keys = log.encode(
            np.zeros(len(pairs), dtype=np.int64),
            rows_arr,
            np.zeros(len(pairs), dtype=np.int64),
        )
        fn(keys, tids, np.zeros(len(pairs), dtype=np.int64))

    register(reads, log.register_reads)
    register(writes, log.register_writes)

    all_rows = np.arange(rows, dtype=np.int64)
    keys = log.encode(
        np.zeros(rows, dtype=np.int64), all_rows, np.zeros(rows, dtype=np.int64)
    )
    got_r = log.min_read(keys)
    got_w = log.min_write(keys)
    for row in range(rows):
        assert got_r[row] == oracle_r.get(row, NO_TID)
        assert got_w[row] == oracle_w.get(row, NO_TID)

    # reset restores the sentinel everywhere
    log.end_batch()
    log.begin_batch(HotspotDetector(Database()).measure({}))  # no-op heats
    # note: begin_batch with fresh heats on the same log instance
    assert (log.min_read(keys) == NO_TID).all()
    assert (log.min_write(keys) == NO_TID).all()


@given(
    st.integers(1, 4096),          # registrations on one key
    st.integers(1, 64),            # bucket size
)
@settings(max_examples=60, deadline=None)
def test_bucket_size_divides_chain(count, s_u):
    """The TID mod s_u re-hash cuts the longest chain to ~count/s_u."""
    tids = np.arange(count, dtype=np.int64)
    slots = tids % s_u  # one hot key spread over s_u sub-slots
    from repro.gpusim.atomics import collision_profile

    _, _, chain = collision_profile(slots)
    assert chain == -(-count // s_u)  # ceil division


@given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
@settings(max_examples=60)
def test_bucket_size_formula_invariants(freq):
    s_u = bucket_size_for(freq)
    assert s_u >= 1
    if freq <= 1.0:
        assert s_u == 1
    else:
        assert s_u % 32 == 0
        assert s_u >= freq  # enough sub-slots for the measured frequency
        assert s_u < freq + 32


@given(op_streams())
@settings(max_examples=30, deadline=None)
def test_dynamic_buckets_never_lengthen_chains(stream):
    """Contention recorded with dynamic buckets is <= without, always."""
    rows, ops = stream
    writes = [(r, t) for r, t, w in ops if w]
    if not writes:
        return
    chains = {}
    for dynamic in (False, True):
        log = make_log(rows, hot=True)
        log.dynamic_buckets = dynamic
        ctx = KernelContext(
            "k", LaunchGeometry.for_threads(max(1, len(writes))), DeviceConfig()
        )
        rows_arr = np.array([p[0] for p in writes], dtype=np.int64)
        tids = np.array([p[1] for p in writes], dtype=np.int64)
        keys = log.encode(
            np.zeros(len(writes), dtype=np.int64),
            rows_arr,
            np.zeros(len(writes), dtype=np.int64),
        )
        log.register_writes(keys, tids, np.zeros(len(writes), dtype=np.int64), ctx)
        chains[dynamic] = ctx.stats.atomic_max_chain
    assert chains[True] <= chains[False]

"""Deterministic-OCC commit rules and the serial-order witness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ConflictFlags, abort_reason, commit_mask, logical_order


def flags(waw, raw, war) -> ConflictFlags:
    return ConflictFlags(
        waw=np.array(waw, dtype=bool),
        raw=np.array(raw, dtype=bool),
        war=np.array(war, dtype=bool),
    )


class TestCommitMask:
    def test_clean_transaction_commits(self):
        f = flags([False], [False], [False])
        assert commit_mask(f, reorder=False)[0]
        assert commit_mask(f, reorder=True)[0]

    def test_waw_always_aborts(self):
        f = flags([True], [False], [False])
        assert not commit_mask(f, reorder=False)[0]
        assert not commit_mask(f, reorder=True)[0]

    def test_raw_aborts_without_reordering(self):
        f = flags([False], [True], [False])
        assert not commit_mask(f, reorder=False)[0]

    def test_raw_only_commits_with_reordering(self):
        f = flags([False], [True], [False])
        assert commit_mask(f, reorder=True)[0]

    def test_war_only_commits_either_way(self):
        f = flags([False], [False], [True])
        assert commit_mask(f, reorder=False)[0]
        assert commit_mask(f, reorder=True)[0]

    def test_raw_plus_war_aborts_even_with_reordering(self):
        f = flags([False], [True], [True])
        assert not commit_mask(f, reorder=True)[0]

    def test_paper_example_3(self):
        """Six transactions on wid=4: odd TIDs read, even TIDs write.

        TIDs: 1..6 -> indices 0..5.  Readers: 1, 3, 5; writers: 2, 4, 6.
        Row-level flags: writer Tx2 is the min writer; readers after it
        have RAW; writers after it have WAW (+WAR from earlier readers).
        """
        #          Tx1    Tx2    Tx3    Tx4    Tx5    Tx6
        waw = [False, False, False, True, False, True]
        raw = [False, False, True, False, True, False]
        war = [False, True, False, True, False, True]
        f = flags(waw, raw, war)
        no_reorder = commit_mask(f, reorder=False)
        assert list(no_reorder) == [True, True, False, False, False, False]
        reorder = commit_mask(f, reorder=True)
        assert list(reorder) == [True, True, True, False, True, False]

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            ConflictFlags(
                waw=np.zeros(2, dtype=bool),
                raw=np.zeros(3, dtype=bool),
                war=np.zeros(2, dtype=bool),
            )


class TestAbortReason:
    def test_reasons(self):
        assert abort_reason(True, False, False) == "waw"
        assert abort_reason(False, True, True) == "raw+war"
        assert abort_reason(False, False, False) == "unknown"


class TestLogicalOrder:
    def test_reader_precedes_writer(self):
        committed = [
            (1, set(), {"k"}),   # writer of k
            (2, {"k"}, set()),   # reader of k (RAW, reordered before)
        ]
        assert logical_order(committed) == [2, 1]

    def test_tid_tiebreak(self):
        committed = [(3, set(), set()), (1, set(), set()), (2, set(), set())]
        assert logical_order(committed) == [1, 2, 3]

    def test_chain_of_reorderings(self):
        # T1 writes a; T5 reads a and writes b; T9 reads b.
        committed = [
            (1, set(), {"a"}),
            (5, {"a"}, {"b"}),
            (9, {"b"}, set()),
        ]
        assert logical_order(committed) == [9, 5, 1]

    def test_two_writers_same_key_rejected(self):
        committed = [(1, set(), {"k"}), (2, set(), {"k"})]
        with pytest.raises(ValueError):
            logical_order(committed)

    def test_empty(self):
        assert logical_order([]) == []

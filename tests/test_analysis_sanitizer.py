"""Racecheck unit tests: shadow logging, sync points, race taxonomy,
plus Hypothesis properties (barrier-synced and all-atomic patterns are
clean; seeded racy kernels produce exactly the expected finding)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import AccessKind, Sanitizer
from repro.gpusim.atomics import AtomicArray
from repro.gpusim.device import Device
from repro.gpusim.interpreter import Warp


def _kinds(san: Sanitizer) -> dict[str, int]:
    counts: dict[str, int] = {}
    for f in san.findings:
        counts[f.kind] = counts.get(f.kind, 0) + 1
    return counts


# ---------------------------------------------------------------------------
# taxonomy: what is (and is not) a race
# ---------------------------------------------------------------------------
def test_write_write_race_detected():
    san = Sanitizer()
    san.begin_kernel("k")
    san.record("buf", [7], 0, AccessKind.WRITE)
    san.record("buf", [7], 1, AccessKind.WRITE)
    san.end_kernel()
    assert _kinds(san) == {"write-write": 1}
    f = san.findings[0]
    assert f.subject == "buf" and f.kernel == "k"
    assert f.index == 7 and f.threads == (0, 1)


def test_read_write_race_detected():
    san = Sanitizer()
    san.begin_kernel("k")
    san.record("buf", [3], 0, AccessKind.READ)
    san.record("buf", [3], 1, AccessKind.WRITE)
    san.end_kernel()
    assert _kinds(san) == {"read-write": 1}
    assert set(san.findings[0].threads) == {0, 1}


def test_atomic_plain_mix_detected():
    san = Sanitizer()
    san.begin_kernel("k")
    san.record("buf", [5], 0, AccessKind.WRITE, atomic=True)
    san.record("buf", [5], 1, AccessKind.WRITE)
    san.end_kernel()
    assert "atomic-plain" in _kinds(san)


def test_all_atomic_contention_is_clean():
    san = Sanitizer()
    san.begin_kernel("k")
    san.record("buf", np.zeros(64, dtype=np.int64), np.arange(64),
               AccessKind.WRITE, atomic=True)
    san.end_kernel()
    assert san.clean


def test_same_thread_accesses_are_clean():
    san = Sanitizer()
    san.begin_kernel("k")
    san.record("buf", [2], 9, AccessKind.READ)
    san.record("buf", [2], 9, AccessKind.WRITE)
    san.record("buf", [2], 9, AccessKind.WRITE)
    san.end_kernel()
    assert san.clean


def test_concurrent_reads_are_clean():
    san = Sanitizer()
    san.begin_kernel("k")
    san.record("buf", np.zeros(32, dtype=np.int64), np.arange(32),
               AccessKind.READ)
    san.end_kernel()
    assert san.clean


# ---------------------------------------------------------------------------
# synchronization points
# ---------------------------------------------------------------------------
def test_kernel_boundary_separates_accesses():
    san = Sanitizer()
    san.begin_kernel("writer")
    san.record("buf", [1], 0, AccessKind.WRITE)
    san.end_kernel()
    san.begin_kernel("reader")
    san.record("buf", [1], 1, AccessKind.READ)
    san.end_kernel()
    assert san.clean
    assert san.kernels_scanned == 2


def test_barrier_separates_accesses():
    san = Sanitizer()
    san.begin_kernel("k")
    san.record("buf", [1], 0, AccessKind.WRITE)
    san.barrier()
    san.record("buf", [1], 1, AccessKind.WRITE)
    san.end_kernel()
    assert san.clean
    assert san.barriers_seen == 1


def test_race_within_barrier_segment_still_detected():
    san = Sanitizer()
    san.begin_kernel("k")
    san.record("buf", [1], 0, AccessKind.WRITE)
    san.barrier()
    san.record("buf", [1], 1, AccessKind.WRITE)
    san.record("buf", [1], 2, AccessKind.WRITE)
    san.end_kernel()
    assert _kinds(san) == {"write-write": 1}
    assert san.findings[0].threads == (1, 2)


def test_finding_flood_is_suppressed():
    san = Sanitizer()
    san.begin_kernel("k")
    idx = np.repeat(np.arange(100, dtype=np.int64), 2)
    thr = np.tile(np.array([0, 1], dtype=np.int64), 100)
    san.record("buf", idx, thr, AccessKind.WRITE)
    san.end_kernel()
    assert len(san.findings) <= 20
    assert san.report.suppressed > 0


# ---------------------------------------------------------------------------
# device / interpreter integration
# ---------------------------------------------------------------------------
def test_device_kernel_opens_sanitizer_epochs():
    device = Device()
    san = Sanitizer()
    device.attach_sanitizer(san)
    with device.kernel("touch", threads=4) as ctx:
        assert ctx.sanitizer is san
        san.record("scratch", [0], 0, AccessKind.WRITE)
    with device.kernel("touch2", threads=4):
        san.record("scratch", [0], 1, AccessKind.READ)
    assert san.clean  # separated by the kernel boundary
    assert san.kernels_scanned == 2


def test_memory_manager_buffers_record_accesses():
    device = Device()
    san = Sanitizer()
    device.attach_sanitizer(san)
    buf = device.memory.alloc("data", 16)
    with device.kernel("racy", threads=2):
        buf.store([4], [1], threads=0)
        buf.store([4], [2], threads=1)
    assert _kinds(san) == {"write-write": 1}
    assert san.findings[0].subject == "data"


def test_warp_interpreter_seeded_race():
    """All lanes store to address 0: racecheck names the buffer and a
    thread pair inside the warp."""
    san = Sanitizer()
    mem = {"out": np.zeros(8, dtype=np.int64)}
    program = [
        ("lane", "l"),
        ("const", "zero", 0),
        ("st", "out", "zero", "l"),
        ("halt",),
    ]
    san.begin_kernel("warp")
    Warp(width=8).run(program, mem, sanitizer=san, thread_base=32)
    san.end_kernel()
    assert _kinds(san) == {"write-write": 1}
    f = san.findings[0]
    assert f.subject == "out"
    assert f.threads == (32, 33)  # thread_base offsets the lane ids


def test_warp_interpreter_barrier_instruction():
    san = Sanitizer()
    mem = {"out": np.zeros(8, dtype=np.int64)}
    program = [
        ("lane", "l"),
        ("const", "zero", 0),
        ("st", "out", "zero", "l"),
        ("barrier",),
        ("ld", "v", "out", "zero"),
        ("halt",),
    ]
    san.begin_kernel("warp")
    stats = Warp(width=4).run(program, mem, sanitizer=san)
    san.end_kernel()
    # The pre-barrier store race is real; the post-barrier loads add no
    # read-write finding against it.
    assert _kinds(san) == {"write-write": 1}
    assert stats.instructions_issued > 0


def test_warp_atomics_are_clean_under_sanitizer():
    san = Sanitizer()
    mem = {"ctr": AtomicArray(4)}
    program = [
        ("const", "zero", 0),
        ("const", "one", 1),
        ("atomic_add", "ctr", "zero", "one", "old"),
        ("halt",),
    ]
    san.begin_kernel("warp")
    Warp(width=16).run(program, mem, sanitizer=san)
    san.end_kernel()
    assert san.clean
    assert mem["ctr"].data[0] == 16


# ---------------------------------------------------------------------------
# Hypothesis properties
# ---------------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.integers(0, 31), st.integers(0, 15)),  # (thread, index)
        min_size=1,
        max_size=64,
    ),
    segments=st.integers(1, 4),
)
def test_barrier_synchronized_writes_never_race(writes, segments):
    """Property: any write pattern is clean if every thread's accesses
    land in its own barrier-delimited segment per address-touching
    round — here, one barrier between every pair of writes."""
    san = Sanitizer()
    san.begin_kernel("k")
    for thread, index in writes:
        san.record("buf", [index], thread, AccessKind.WRITE)
        san.barrier()
    san.end_kernel()
    assert san.clean


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(0, 31),                  # thread
            st.integers(0, 15),                  # index
            st.sampled_from([AccessKind.READ, AccessKind.WRITE]),
        ),
        max_size=64,
    )
)
def test_pure_atomic_patterns_never_race(ops):
    """Property: atomics-only traffic is always clean, whatever the
    thread/address interleaving."""
    san = Sanitizer()
    san.begin_kernel("k")
    for thread, index, kind in ops:
        san.record("buf", [index], thread, kind, atomic=True)
    san.end_kernel()
    assert san.clean


@settings(max_examples=40, deadline=None)
@given(
    t1=st.integers(0, 100),
    t2=st.integers(0, 100),
    index=st.integers(0, 1000),
    readers=st.lists(st.tuples(st.integers(101, 200), st.integers(1001, 2000)),
                     max_size=16),
)
def test_seeded_write_write_always_found(t1, t2, index, readers):
    """Property: two distinct-thread plain writes to one address are
    flagged exactly once as write-write, regardless of surrounding
    unrelated read traffic."""
    if t1 == t2:
        t2 = t1 + 1
    san = Sanitizer()
    san.begin_kernel("k")
    for thread, idx in readers:  # unrelated clean traffic
        san.record("noise", [idx], thread, AccessKind.READ)
    san.record("target", [index], t1, AccessKind.WRITE)
    san.record("target", [index], t2, AccessKind.WRITE)
    san.end_kernel()
    ww = [f for f in san.findings if f.kind == "write-write"]
    assert len(ww) == 1
    assert ww[0].subject == "target"
    assert set(ww[0].threads) == {min(t1, t2), max(t1, t2)}
    assert ww[0].index == index


@settings(max_examples=30, deadline=None)
@given(
    lanes=st.integers(2, 16),
    addr=st.integers(0, 7),
)
def test_seeded_warp_store_race_always_found(lanes, addr):
    """Property: a warp where every lane stores to the same address
    always yields exactly one write-write finding on that address."""
    san = Sanitizer()
    mem = {"out": np.zeros(8, dtype=np.int64)}
    program = [
        ("lane", "l"),
        ("const", "a", addr),
        ("st", "out", "a", "l"),
        ("halt",),
    ]
    san.begin_kernel("warp")
    Warp(width=lanes).run(program, mem, sanitizer=san)
    san.end_kernel()
    ww = [f for f in san.findings if f.kind == "write-write"]
    assert len(ww) == 1 and ww[0].index == addr


def test_record_rejects_misaligned_threads():
    san = Sanitizer()
    with pytest.raises(ValueError):
        san.record("buf", [1, 2, 3], [0, 1], AccessKind.READ)

"""End-to-end analysis runs: the sanitized LTPG engine is clean on the
bank fixture and on the real workloads, the CLI honors its exit-code
contract, and sanitize=False keeps the hot path uninstrumented."""

from __future__ import annotations

import pytest

from helpers import bank_engine, tids, txn

from repro.analysis.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main
from repro.analysis.passes import run_memcheck, run_pass, run_racecheck
from repro.core import LTPGConfig


def test_engine_sanitizer_disabled_by_default():
    engine, _, _ = bank_engine()
    assert engine.sanitizer is None
    assert engine.device.memory.sanitizer is None


def test_sanitized_bank_batch_is_clean():
    engine, _, _ = bank_engine(config=LTPGConfig(batch_size=32, sanitize=True))
    assert engine.sanitizer is not None
    batch = [txn("transfer", 2 * i, 2 * i + 1, 5) for i in range(8)]
    batch += [txn("deposit", 3, 7) for _ in range(8)]
    batch += [txn("audit", 0, 1) for _ in range(8)]
    tids(batch)
    result = engine.run_batch(batch)
    assert result.committed
    assert engine.sanitizer.clean, engine.sanitizer.report.render()
    assert engine.sanitizer.accesses_logged > 0
    assert engine.sanitizer.kernels_scanned >= 3  # execute/conflict/writeback


def test_sanitized_conflicting_batch_is_clean():
    """Conflicting transactions abort deterministically; the surviving
    writes must not race."""
    engine, _, _ = bank_engine(config=LTPGConfig(batch_size=32, sanitize=True))
    batch = [txn("transfer", 0, 1, 5) for _ in range(16)]
    tids(batch)
    result = engine.run_batch(batch)
    assert result.committed and result.aborted
    assert engine.sanitizer.clean, engine.sanitizer.report.render()


@pytest.mark.analysis
@pytest.mark.parametrize("workload", ["tpcc", "ycsb"])
def test_racecheck_phase_kernels_clean(workload):
    result = run_racecheck(workload, batches=2, batch_size=256)
    assert result.clean, result.render()
    assert {"execute", "conflict", "writeback"} <= set(result.kernels)
    assert result.accesses_logged > 0


@pytest.mark.analysis
@pytest.mark.parametrize("workload", ["tpcc", "smallbank"])
def test_memcheck_clean(workload):
    result = run_memcheck(workload, batches=2, batch_size=256)
    assert result.clean, result.render()


@pytest.mark.analysis
def test_run_all_passes_clean_on_ycsb():
    results = run_pass("all", workload="ycsb", batches=1, batch_size=256)
    assert len(results) == 4
    for result in results:
        assert result.clean, result.render()


def test_run_pass_rejects_unknown_pass():
    with pytest.raises(ValueError):
        run_pass("valgrind")


@pytest.mark.analysis
def test_cli_clean_run_exits_zero(capsys):
    code = main(["detlint", "--workload", "smallbank"])
    out = capsys.readouterr().out
    assert code == EXIT_CLEAN
    assert "clean" in out


def test_cli_usage_errors_exit_two(capsys):
    assert main(["racecheck", "--batches", "0"]) == EXIT_USAGE
    assert main(["nosuchpass"]) == EXIT_USAGE
    capsys.readouterr()


def test_cli_findings_exit_one(capsys, monkeypatch):
    """Seed a nondeterministic procedure into the workload registry: the
    CLI must exit 1 and name the offender."""
    import repro.analysis.passes as passes_mod
    from repro.analysis.workload import build_workload

    def tainted(name, seed=7):
        setup = build_workload(name, seed=seed)

        @setup.registry.register("roulette")
        def roulette(ctx, key):
            import random

            ctx.write("accounts", key, "balance", random.randint(0, 9))

        return setup

    monkeypatch.setattr(passes_mod, "build_workload", tainted)
    code = main(["detlint", "--workload", "smallbank"])
    out = capsys.readouterr().out
    assert code == EXIT_FINDINGS
    assert "roulette" in out

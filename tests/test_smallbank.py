"""SmallBank workload: procedure semantics, money conservation,
serializability on LTPG — the generality check."""

from __future__ import annotations

import pytest

from repro.core import LTPGConfig, LTPGEngine
from repro.errors import WorkloadError
from repro.txn import BufferedContext, apply_local_sets, assign_tids
from repro.workloads.smallbank import DEFAULT_MIX, build_smallbank


def total_money(db):
    table = db.table("smallbank")
    return sum(
        table.read(r, "checking") + table.read(r, "savings")
        for r in range(table.num_rows)
    )


class TestProcedures:
    def setup_method(self):
        self.db, self.registry, _ = build_smallbank(16, seed=1)

    def apply(self, name, *params):
        ctx = BufferedContext(self.db)
        self.registry.get(name)(ctx, *params)
        apply_local_sets(self.db, ctx.local)

    def read(self, c, col):
        t = self.db.table("smallbank")
        return t.read(t.lookup(c), col)

    def test_deposit_checking(self):
        self.apply("deposit_checking", 3, 50)
        assert self.read(3, "checking") == 10_050

    def test_transact_savings_overdraft_aborts(self):
        from repro.errors import TransactionAborted

        ctx = BufferedContext(self.db)
        with pytest.raises(TransactionAborted):
            self.registry.get("transact_savings")(ctx, 3, -20_000)

    def test_amalgamate_moves_everything(self):
        self.apply("amalgamate", 2, 5)
        assert self.read(2, "checking") == 0
        assert self.read(2, "savings") == 0
        assert self.read(5, "checking") == 30_000

    def test_write_check_penalty(self):
        self.apply("write_check", 1, 25_000)  # above checking+savings
        assert self.read(1, "checking") == 10_000 - 25_000 - 1

    def test_send_payment_insufficient_funds(self):
        from repro.errors import TransactionAborted

        ctx = BufferedContext(self.db)
        with pytest.raises(TransactionAborted):
            self.registry.get("send_payment")(ctx, 0, 1, 99_999)

    def test_send_payment_moves_funds(self):
        self.apply("send_payment", 0, 1, 40)
        assert self.read(0, "checking") == 9_960
        assert self.read(1, "checking") == 10_040


class TestGenerator:
    def test_mix_validation(self):
        with pytest.raises(WorkloadError):
            build_smallbank(10, mix={"balance": 0.5})
        with pytest.raises(WorkloadError):
            build_smallbank(10, mix={"robbery": 1.0})
        with pytest.raises(WorkloadError):
            build_smallbank(1)

    def test_deterministic(self):
        _, _, g1 = build_smallbank(100, seed=5)
        _, _, g2 = build_smallbank(100, seed=5)
        a = [(t.procedure_name, t.params) for t in g1.make_batch(50)]
        b = [(t.procedure_name, t.params) for t in g2.make_batch(50)]
        assert a == b

    def test_two_account_procedures_distinct(self):
        _, _, gen = build_smallbank(50, zipf_alpha=2.0, seed=5)
        for t in gen.make_batch(200):
            if t.procedure_name in ("amalgamate", "send_payment"):
                assert t.params[0] != t.params[1]


class TestOnLtpg:
    def run_engine(self, alpha, batch=256):
        db, registry, gen = build_smallbank(4096, zipf_alpha=alpha, seed=9)
        engine = LTPGEngine(db, registry, LTPGConfig(batch_size=batch))
        txns = gen.make_batch(batch)
        assign_tids(txns, 0)
        result = engine.run_batch(txns)
        return db, registry, result

    def test_low_skew_mostly_commits(self):
        _, _, result = self.run_engine(alpha=0.0)
        assert result.stats.commit_rate > 0.8

    def test_high_skew_contends(self):
        _, _, low = self.run_engine(alpha=0.0)
        _, _, high = self.run_engine(alpha=2.0)
        assert high.stats.commit_rate < low.stats.commit_rate

    def test_money_conserved_modulo_writechecks(self):
        db, registry, gen = build_smallbank(256, zipf_alpha=0.5, seed=4)
        before = total_money(db)
        engine = LTPGEngine(db, registry, LTPGConfig(batch_size=128))
        mix = {"deposit_checking": 0.3, "send_payment": 0.4, "amalgamate": 0.3}
        gen.mix = mix
        txns = gen.make_batch(128)
        assign_tids(txns, 0)
        result = engine.run_batch(txns)
        deposited = sum(
            t.params[1] for t in result.committed
            if t.procedure_name == "deposit_checking"
        )
        assert total_money(db) == before + deposited

    def test_serializability_witness(self):
        db, registry, gen = build_smallbank(64, zipf_alpha=1.0, seed=2)
        reference = db.copy()
        engine = LTPGEngine(db, registry, LTPGConfig(batch_size=128))
        txns = gen.make_batch(128)
        assign_tids(txns, 0)
        result = engine.run_batch(txns)
        by_tid = {t.tid: t for t in result.committed}
        for tid in result.serial_order():
            t = by_tid[tid]
            ctx = BufferedContext(reference)
            registry.get(t.procedure_name)(ctx, *t.params)
            apply_local_sets(reference, ctx.local)
        assert reference.state_digest() == db.state_digest()

"""Seeded-violation tests for the kernellint static pass.

Every rule class is proven *live*: a twin seeded with exactly one
violation must produce a finding with the expected ``KLxxx`` code,
anchored inside the twin's own source span in this file.  The committed
workload twins must stay clean (the suppressed sanctioned readbacks in
``tpcc/batched.py`` carry explicit allow markers).

The violation twins are module-level functions (not nested in the
tests) so the pickle-safety rules don't fire on them incidentally.
"""

from __future__ import annotations

import inspect
import json

import numpy as np
import pytest

from repro.analysis import cli
from repro.analysis.findings import KERNELLINT
from repro.analysis.kernellint import (
    RULES,
    drift_findings,
    lint_pickle_safety,
    lint_registry_twins,
    lint_twin_unit,
    source_unit,
    unwrap_twin,
)
from repro.analysis.passes import run_kernellint, run_pass
from repro.txn.procedures import ProcedureRegistry

pytestmark = pytest.mark.analysis


# -- seeded violation twins (module level: see module docstring) ----------

def _bad_implicit_int(bctx, params):
    v = params.column(0)
    return int(v[0])


def _bad_branch_on_device(bctx, params):
    v = params.column(0)
    if v[0] > 0:
        bctx.logic_abort(bctx.all_lanes())


def _bad_iterate_device(bctx, params):
    v = params.column(0)
    total = 0
    for x in v:
        total += x
    return total


def _bad_unmarked_readback_loop(bctx, params):
    xp = bctx.xp
    v = params.column(0)
    out = []
    for k in xp.tolist(v):
        out.append(k)
    return out


def _ok_marked_readback_loop(bctx, params):
    xp = bctx.xp
    v = params.column(0)
    out = []
    # kernellint: allow[KL105] index probe over one explicit D2H
    for k in xp.tolist(v):
        out.append(k)
    return out


def _bad_host_table_column(bctx, params, table):
    v = params.column(0)
    ytd = table.column("w_ytd")
    return ytd[v]


def _bad_private_table_storage(bctx, params, table):
    v = params.column(0)
    return table._columns["w_ytd"][v]


def _ok_marked_host_table_column(bctx, params, table):
    v = params.column(0)
    # kernellint: allow[KL106] cold catalog probe, fenced once at setup
    ytd = table.column("w_ytd")
    return ytd[v]


def _bad_raw_numpy(bctx, params):
    v = params.column(0)
    return np.sort(v)


def _bad_off_protocol_xp(bctx, params):
    xp = bctx.xp
    v = params.column(0)
    return xp.mean(v)


def _bad_float_literal(bctx, params):
    v = params.column(0)
    return v * 0.5


def _bad_true_division(bctx, params):
    v = params.column(0)
    return v / 2


def _bad_builtin_sum(bctx, params):
    v = params.column(0)
    return sum(v)


def _bad_scatter_nondisjoint(bctx, params):
    xp = bctx.xp
    v = params.column(0)
    acc = xp.zeros(64, dtype=np.int64)
    xp.scatter(acc, params.column(1), v)


def _ok_scatter_disjoint(bctx, params):
    xp = bctx.xp
    v = params.column(0)
    acc = xp.zeros(64, dtype=np.int64)
    rows = xp.flatnonzero(v)
    xp.scatter(acc, rows, v[rows])


def _bad_unordered_iteration(bctx, params):
    for col in {"a", "b"}:
        bctx.add("t", bctx.all_lanes(), params.column(0), col)


def _bad_random_twin(bctx, params):
    import random

    return random.random()


def _make_closure_twin(scale):
    def twin(bctx, params):
        return scale

    return twin


_lambda_twin = lambda bctx, params: None  # noqa: E731


class _Unpicklable:
    def __init__(self):
        self.gen = (x for x in range(3))

    def __call__(self, bctx, params):
        return None


# -- drift-audit fixtures: scalar/twin pairs -------------------------------

def _scalar_writes_two(ctx, key):
    ctx.write("t", key, "a", 1)
    ctx.write("t", key, "b", 2)


def _twin_writes_one(bctx, params):
    lanes = bctx.all_lanes()
    bctx.write("t", lanes, params.column(0), "a")


def _scalar_reads_b(ctx, key):
    val = ctx.read("t", key, "b")
    ctx.write("t", key, "a", val)


def _twin_reads_nothing(bctx, params):
    lanes = bctx.all_lanes()
    bctx.write("t", lanes, params.column(0), "a")


def _scalar_aborts(ctx, key):
    if ctx.read("t", key, "a") < 0:
        ctx.abort("negative")
    ctx.write("t", key, "a", 0)


def _twin_never_aborts(bctx, params):
    lanes = bctx.all_lanes()
    bctx.read_keys("t", lanes, params.column(0), "a")
    bctx.write("t", lanes, params.column(0), "a")


def _scalar_loop_rmw(ctx, keys):
    for key in keys:
        bal = ctx.read("t", key, "a")
        ctx.write("t", key, "a", bal + 1)


def _twin_no_fallback(bctx, params):
    lanes = bctx.all_lanes()
    bctx.read_keys("t", lanes, params.column(0), "a")
    bctx.write("t", lanes, params.column(0), "a")


def _scalar_plain_write(ctx, key):
    ctx.write("t", key, "a", 1)


def _twin_extra_write(bctx, params):
    lanes = bctx.all_lanes()
    bctx.write("t", lanes, params.column(0), "a")
    bctx.write("t", lanes, params.column(0), "b")


def _scalar_range_read(ctx, lo, hi):
    return ctx.range_read("t", lo, hi, "a")


def _twin_no_range(bctx, params):
    lanes = bctx.all_lanes()
    bctx.read_keys("t", lanes, params.column(0), "a")


# -- helpers ---------------------------------------------------------------

def _lint(fn):
    unit = source_unit(fn.__name__, fn)
    findings, suppressed, _ = lint_twin_unit(unit)
    return findings, suppressed


def _codes(findings):
    return [f.code for f in findings]


def _assert_single(fn, code):
    """One seeded violation -> exactly that code, spanned in this file."""
    findings, _ = _lint(fn)
    assert _codes(findings) == [code], [f.describe() for f in findings]
    finding = findings[0]
    assert finding.kind == RULES[code]
    assert finding.pass_name == KERNELLINT
    assert finding.file.endswith("test_analysis_kernellint.py")
    lines, first = inspect.getsourcelines(fn)
    assert finding.span is not None
    assert first <= finding.span[0] <= first + len(lines)
    return finding


def _drift(scalar, twin, name="proc"):
    s = source_unit(name, scalar)
    t = source_unit(f"{name}[batched]", twin)
    return drift_findings(name, s, t)


# -- backend-contract rules (KL1xx) ----------------------------------------

def test_kl101_implicit_int_conversion():
    _assert_single(_bad_implicit_int, "KL101")


def test_kl101_branch_on_device_value():
    _assert_single(_bad_branch_on_device, "KL101")


def test_kl101_host_iteration_of_device_array():
    _assert_single(_bad_iterate_device, "KL101")


def test_kl105_unmarked_readback_loop():
    _assert_single(_bad_unmarked_readback_loop, "KL105")


def test_kl105_allow_marker_suppresses():
    findings, suppressed = _lint(_ok_marked_readback_loop)
    assert findings == []
    assert suppressed == 1


def test_kl106_host_table_column_read():
    finding = _assert_single(_bad_host_table_column, "KL106")
    assert "DeviceTableView" in finding.message


def test_kl106_private_table_storage_access():
    _assert_single(_bad_private_table_storage, "KL106")


def test_kl106_allow_marker_suppresses():
    findings, suppressed = _lint(_ok_marked_host_table_column)
    assert findings == []
    assert suppressed == 1


def test_kl106_params_column_not_flagged():
    # params.column(N) is the sanctioned ParamColumns accessor, not a
    # host-side Table read
    findings, _ = _lint(_ok_scatter_disjoint)
    assert "KL106" not in _codes(findings)


def test_kl102_raw_numpy_on_device_data():
    finding = _assert_single(_bad_raw_numpy, "KL102")
    assert "np.sort" in finding.message


def test_kl102_off_protocol_xp_method():
    finding = _assert_single(_bad_off_protocol_xp, "KL102")
    assert "xp.mean" in finding.message


def test_kl103_float_literal():
    _assert_single(_bad_float_literal, "KL103")


def test_kl103_true_division():
    _assert_single(_bad_true_division, "KL103")


# -- determinism rules (KL2xx) ---------------------------------------------

def test_kl201_builtin_sum_over_device_array():
    _assert_single(_bad_builtin_sum, "KL201")


def test_kl202_scatter_index_not_provably_disjoint():
    _assert_single(_bad_scatter_nondisjoint, "KL202")


def test_kl202_disjoint_index_accepted():
    findings, _ = _lint(_ok_scatter_disjoint)
    assert findings == [], [f.describe() for f in findings]


def test_kl203_unordered_iteration_feeding_emission():
    _assert_single(_bad_unordered_iteration, "KL203")


def test_kl204_nondeterministic_source_in_twin():
    # the import and the call are each a finding
    findings, _ = _lint(_bad_random_twin)
    assert findings and set(_codes(findings)) == {"KL204"}
    for finding in findings:
        assert finding.kind == RULES["KL204"]
        assert "random" in finding.message
        assert finding.file.endswith("test_analysis_kernellint.py")


# -- pickle-safety rules (KL3xx) -------------------------------------------

def test_kl301_closure_twin():
    twin = _make_closure_twin(3)
    findings = lint_pickle_safety("closure_proc", twin)
    codes = {f.code for f in findings}
    assert "KL301" in codes, [f.describe() for f in findings]
    kl301 = next(f for f in findings if f.code == "KL301")
    assert "scale" in kl301.message
    assert kl301.subject == "closure_proc[batched]"


def test_kl302_lambda_twin():
    findings = lint_pickle_safety("lambda_proc", _lambda_twin)
    assert "KL302" in {f.code for f in findings}


def test_kl303_unpicklable_twin():
    findings = lint_pickle_safety("obj_proc", _Unpicklable())
    assert [f.code for f in findings] == ["KL303"]


def test_pickle_safety_accepts_module_level_partial():
    import functools

    twin = functools.partial(_twin_writes_one)
    assert lint_pickle_safety("ok_proc", twin) == []
    assert unwrap_twin(twin) is _twin_writes_one


# -- twin-drift rules (KL4xx) ----------------------------------------------

def test_kl401_twin_missing_write():
    findings = _drift(_scalar_writes_two, _twin_writes_one)
    assert _codes(findings) == ["KL401"]
    assert "t.b" in findings[0].message
    assert findings[0].subject == "proc[batched]"


def test_kl402_twin_missing_read():
    findings = _drift(_scalar_reads_b, _twin_reads_nothing)
    assert "KL402" in _codes(findings)
    kl402 = next(f for f in findings if f.code == "KL402")
    assert "t.b" in kl402.message


def test_kl403_twin_missing_abort():
    findings = _drift(_scalar_aborts, _twin_never_aborts)
    assert _codes(findings) == ["KL403"]


def test_kl404_twin_missing_fallback_for_loop_rmw():
    findings = _drift(_scalar_loop_rmw, _twin_no_fallback)
    assert _codes(findings) == ["KL404"]
    assert "t.a" in findings[0].message


def test_kl405_twin_extra_write():
    findings = _drift(_scalar_plain_write, _twin_extra_write)
    assert _codes(findings) == ["KL405"]
    assert "t.b" in findings[0].message


def test_kl406_twin_missing_range_predicate():
    findings = _drift(_scalar_range_read, _twin_no_range)
    assert _codes(findings) == ["KL406"]


def test_matched_pair_has_no_drift():
    findings = _drift(_scalar_plain_write, _twin_writes_one)
    assert findings == [], [f.describe() for f in findings]


# -- registry-level driver -------------------------------------------------

def _seeded_registry():
    registry = ProcedureRegistry()
    registry.register("bad", _scalar_plain_write)
    registry.register_batched("bad", _bad_implicit_int)
    return registry


def test_lint_registry_twins_reports_seeded_violation():
    findings, twins, suppressed = lint_registry_twins(_seeded_registry())
    assert twins == 1
    codes = _codes(findings)
    assert "KL101" in codes
    # the seeded twin also drifts from its scalar (no writes at all)
    assert "KL401" in codes


def test_run_kernellint_exits_nonzero_on_seeded_violation(monkeypatch, capsys):
    import types

    from repro.analysis import passes

    setup = types.SimpleNamespace(registry=_seeded_registry())
    monkeypatch.setattr(passes, "build_workload", lambda name, seed=7: setup)
    rc = cli.main(["kernellint", "--workload", "tpcc"])
    assert rc == cli.EXIT_FINDINGS
    out = capsys.readouterr().out
    assert "KL101" in out


# -- committed tree must lint clean ----------------------------------------

@pytest.mark.parametrize("workload", ["tpcc", "ycsb", "smallbank"])
def test_committed_twins_lint_clean(workload):
    result = run_kernellint(workload)
    assert result.clean, result.report.render()
    assert result.procedures_checked > 0


def test_committed_tpcc_sanctioned_readbacks_are_marked():
    # the two tpcc host-probe sites are suppressed by allow markers, not
    # invisible to the rule
    result = run_kernellint("tpcc")
    assert result.report.suppressed == 2


def test_run_pass_all_includes_kernellint():
    results = run_pass("kernellint", workload="smallbank")
    assert [r.pass_name for r in results] == ["kernellint"]


def test_cli_clean_exit_on_committed_tree(capsys):
    rc = cli.main(["kernellint", "--workload", "smallbank"])
    assert rc == cli.EXIT_CLEAN
    assert "kernellint" in capsys.readouterr().out


# -- emitters --------------------------------------------------------------

def test_json_and_sarif_outputs(tmp_path, monkeypatch, capsys):
    import types

    from repro.analysis import passes

    setup = types.SimpleNamespace(registry=_seeded_registry())
    monkeypatch.setattr(passes, "build_workload", lambda name, seed=7: setup)
    json_path = tmp_path / "findings.json"
    sarif_path = tmp_path / "findings.sarif"
    rc = cli.main([
        "kernellint", "--workload", "tpcc",
        "--json-out", str(json_path),
        "--sarif-out", str(sarif_path),
    ])
    assert rc == cli.EXIT_FINDINGS

    doc = json.loads(json_path.read_text())
    assert doc["runs"][0]["pass"] == "kernellint"
    codes = {f.get("code") for f in doc["runs"][0]["findings"]}
    assert "KL101" in codes

    sarif = json.loads(sarif_path.read_text())
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert set(RULES) == rule_ids
    result_ids = {r["ruleId"] for r in run["results"]}
    assert "KL101" in result_ids
    located = [r for r in run["results"] if "locations" in r]
    assert located, "expected at least one located SARIF result"
    loc = located[0]["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"].endswith(".py")
    assert loc["region"]["startLine"] >= 1

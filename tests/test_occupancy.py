"""Occupancy calculator: limits, limiters, lane scaling."""

from __future__ import annotations

import pytest

from repro.errors import DeviceError
from repro.gpusim import DeviceConfig
from repro.gpusim.occupancy import (
    KernelResources,
    OccupancyResult,
    SmLimits,
    effective_lanes,
    occupancy,
)


class TestOccupancy:
    def test_light_kernel_is_unlimited(self):
        # 256 threads (8 warps), 16 regs/thread, no shared memory:
        # warp budget allows 6 blocks; registers allow 16; block cap 16.
        result = occupancy(KernelResources(256, registers_per_thread=16))
        assert result.blocks_per_sm == 6
        assert result.warps_per_sm == 48
        assert result.occupancy == pytest.approx(1.0)
        assert result.limiter == "warps"

    def test_register_limited(self):
        # 255 regs/thread: one block of 256 threads needs ~65k regs.
        result = occupancy(KernelResources(256, registers_per_thread=255))
        assert result.blocks_per_sm == 1
        assert result.limiter == "registers"
        assert result.occupancy < 0.25

    def test_shared_memory_limited(self):
        result = occupancy(
            KernelResources(64, registers_per_thread=16,
                            shared_bytes_per_block=50 * 1024)
        )
        assert result.blocks_per_sm == 2
        assert result.limiter == "shared_memory"

    def test_block_cap_limited(self):
        # tiny 32-thread blocks: 16-block cap binds before the 48 warps
        result = occupancy(KernelResources(32, registers_per_thread=16))
        assert result.blocks_per_sm == 16
        assert result.warps_per_sm == 16
        assert result.limiter == "blocks"

    def test_oversized_kernel_rejected(self):
        with pytest.raises(DeviceError):
            occupancy(
                KernelResources(1024, registers_per_thread=255,
                                shared_bytes_per_block=200 * 1024)
            )

    def test_partial_warp_rounds_up(self):
        result = occupancy(KernelResources(33, registers_per_thread=16))
        # 33 threads = 2 warps
        assert result.warps_per_sm % 2 == 0

    def test_active_threads(self):
        result = occupancy(KernelResources(256, registers_per_thread=16))
        assert result.active_threads_per_sm == 48 * 32

    def test_invalid_inputs(self):
        with pytest.raises(DeviceError):
            KernelResources(0)
        with pytest.raises(DeviceError):
            KernelResources(32, registers_per_thread=-1)
        with pytest.raises(DeviceError):
            SmLimits(max_warps=0)


class TestEffectiveLanes:
    def test_full_occupancy_full_lanes(self):
        cfg = DeviceConfig()
        lanes = effective_lanes(cfg, KernelResources(256, registers_per_thread=16))
        assert lanes == cfg.total_lanes

    def test_low_occupancy_scales_down(self):
        cfg = DeviceConfig()
        lanes = effective_lanes(cfg, KernelResources(256, registers_per_thread=255))
        assert lanes < cfg.total_lanes // 4
        assert lanes >= cfg.warp_size

"""Batch-to-batch pipeline: overlap, retry delay, throughput gain."""

from __future__ import annotations

import pytest

from helpers import build_bank, txn
from repro.bench.runner import steady_state_run
from repro.core import LTPGConfig, LTPGEngine
from repro.core.pipeline import pipelined, run_pipelined
from repro.txn import BatchScheduler


class FixedGenerator:
    """Feeds an endless supply of disjoint transfers."""

    def __init__(self, accounts: int):
        self.accounts = accounts
        self._next = 0

    def make_batch(self, size: int):
        out = []
        for _ in range(size):
            a = self._next % (self.accounts // 2)
            out.append(txn("transfer", 2 * a, 2 * a + 1, 1))
            self._next += 1
        return out


class TestPipeline:
    def test_context_manager_restores_streams(self):
        db, registry = build_bank()
        engine = LTPGEngine(db, registry, LTPGConfig(batch_size=16))
        with pipelined(engine) as e:
            assert e.compute_stream == "compute"
        assert engine.compute_stream == "stream0"

    def test_pipelined_makespan_beats_serial(self):
        results = {}
        for mode in ("serial", "pipelined"):
            db, registry = build_bank(accounts=256)
            config = LTPGConfig(batch_size=128, pipelined=(mode == "pipelined"))
            engine = LTPGEngine(db, registry, config)
            gen = FixedGenerator(256)
            if mode == "pipelined":
                with pipelined(engine):
                    steady_state_run(engine, gen, 128, 8)
            else:
                steady_state_run(engine, gen, 128, 8)
            results[mode] = engine.device.elapsed_ns()
        assert results["pipelined"] < results["serial"]

    def test_pipelined_results_identical_to_serial(self):
        # A ring of conflicting transfers commits exactly one txn per
        # batch (every other txn WAW-chains on the minimum TID), so give
        # the loop enough batches to drain completely before comparing.
        digests = {}
        for mode in ("serial", "pipelined"):
            db, registry = build_bank(accounts=64)
            config = LTPGConfig(batch_size=32)
            engine = LTPGEngine(db, registry, config)
            txns = [txn("transfer", i % 8, (i + 1) % 8, 1) for i in range(16)]
            scheduler = BatchScheduler(
                32, retry_delay_batches=2 if mode == "pipelined" else 1
            )
            scheduler.admit(txns)
            if mode == "pipelined":
                run_pipelined(engine, scheduler, max_batches=200)
            else:
                engine.process(scheduler, max_batches=200)
            assert all(t.is_final for t in txns)
            digests[mode] = db.state_digest()
        # Same final state: retry *timing* differs but every transfer
        # eventually applies its +/- amount, and addition commutes.
        assert digests["serial"] == digests["pipelined"]

    def test_per_batch_latency_spans_streams(self):
        db, registry = build_bank(accounts=64)
        engine = LTPGEngine(db, registry, LTPGConfig(batch_size=16))
        with pipelined(engine):
            txns = [txn("deposit", i, 1) for i in range(16)]
            for i, t in enumerate(txns):
                t.tid = i
            result = engine.run_batch(txns)
        assert result.stats.latency_ns > 0
        assert result.stats.transfer_ns > 0

"""Atomic-array semantics and contention accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.gpusim import AtomicArray, DeviceConfig, KernelContext, LaunchGeometry
from repro.gpusim.atomics import collision_profile


def make_ctx(threads: int = 32) -> KernelContext:
    return KernelContext("k", LaunchGeometry.for_threads(threads), DeviceConfig())


class TestScalarAtomics:
    def test_atomic_min_updates_and_returns_old(self):
        arr = AtomicArray(4, fill=100)
        old = arr.atomic_min(1, 42)
        assert old == 100
        assert arr.data[1] == 42

    def test_atomic_min_keeps_smaller_value(self):
        arr = AtomicArray(4, fill=10)
        arr.atomic_min(0, 50)
        assert arr.data[0] == 10

    def test_atomic_max(self):
        arr = AtomicArray(2, fill=5)
        assert arr.atomic_max(0, 9) == 5
        assert arr.data[0] == 9

    def test_atomic_add_returns_old(self):
        arr = AtomicArray(2)
        assert arr.atomic_add(0, 7) == 0
        assert arr.atomic_add(0, 3) == 7
        assert arr.data[0] == 10

    def test_atomic_exch(self):
        arr = AtomicArray(1, fill=4)
        assert arr.atomic_exch(0, 9) == 4
        assert arr.data[0] == 9

    def test_atomic_cas_success_and_failure(self):
        arr = AtomicArray(1, fill=4)
        assert arr.atomic_cas(0, 4, 8) == 4
        assert arr.data[0] == 8
        assert arr.atomic_cas(0, 4, 99) == 8
        assert arr.data[0] == 8  # compare failed, unchanged


class TestBatchAtomics:
    def test_min_many_takes_minimum_per_address(self):
        arr = AtomicArray(3, fill=100)
        arr.atomic_min_many([0, 0, 1, 2, 2], [5, 9, 7, 8, 2])
        assert list(arr.data) == [5, 7, 2]

    def test_add_many_accumulates_duplicates(self):
        arr = AtomicArray(2)
        arr.atomic_add_many([0, 0, 1], [1, 2, 5])
        assert list(arr.data) == [3, 5]

    def test_exch_many_last_thread_wins(self):
        arr = AtomicArray(1, fill=-1)
        old = arr.atomic_exch_many([0, 0, 0], [10, 20, 30])
        assert arr.data[0] == 30
        assert list(old) == [-1, 10, 20]

    def test_min_with_old_serialized_ascending(self):
        arr = AtomicArray(1, fill=50)
        old = arr.atomic_min_with_old([0, 0, 0], [30, 40, 10])
        # thread order: 30 sees 50; 40 sees 30; 10 sees 30.
        assert list(old) == [50, 30, 30]
        assert arr.data[0] == 10

    def test_min_with_old_multiple_addresses(self):
        arr = AtomicArray(3, fill=99)
        old = arr.atomic_min_with_old([2, 0, 2, 0], [5, 7, 3, 1])
        assert list(arr.data) == [1, 99, 3]
        assert list(old) == [99, 99, 5, 7]

    def test_mismatched_lengths_rejected(self):
        arr = AtomicArray(2)
        with pytest.raises(DeviceError):
            arr.atomic_min_many([0, 1], [1])

    def test_contention_recorded_into_context(self):
        ctx = make_ctx()
        arr = AtomicArray(4).bind(ctx)
        arr.atomic_add_many([0, 0, 0, 1], [1, 1, 1, 1])
        assert ctx.stats.atomic_ops == 4
        assert ctx.stats.atomic_serialized == 2  # two waiters on addr 0
        assert ctx.stats.atomic_max_chain == 3

    def test_unbound_array_records_nothing(self):
        arr = AtomicArray(2)
        arr.atomic_add_many([0, 0], [1, 1])  # must not raise


class TestCollisionProfile:
    def test_empty(self):
        assert collision_profile(np.array([], dtype=np.int64)) == (0, 0, 0)

    def test_all_distinct(self):
        total, serialized, chain = collision_profile(np.arange(10))
        assert (total, serialized, chain) == (10, 0, 1)

    def test_all_same(self):
        total, serialized, chain = collision_profile(np.zeros(8, dtype=np.int64))
        assert (total, serialized, chain) == (8, 7, 8)

    def test_sparse_large_addresses(self):
        # Must not allocate dense arrays over a huge address range.
        idx = np.array([0, 10**15, 10**15], dtype=np.int64)
        total, serialized, chain = collision_profile(idx)
        assert (total, serialized, chain) == (3, 1, 2)

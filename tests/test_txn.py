"""Transaction layer: contexts, procedures, batching, decomposition."""

from __future__ import annotations

import pytest

from helpers import build_bank, txn
from repro.errors import (
    TransactionAborted,
    TransactionError,
    WorkloadError,
)
from repro.txn import (
    BatchScheduler,
    BufferedContext,
    OpKind,
    ProcedureRegistry,
    Transaction,
    TxnStatus,
    apply_local_sets,
    assign_tids,
    plan_grouped,
    plan_naive,
)


class TestBufferedContext:
    def setup_method(self):
        self.db, self.registry = build_bank(accounts=8)

    def test_read_records_op(self):
        ctx = BufferedContext(self.db)
        value = ctx.read("accounts", 3, "balance")
        assert value == 1000
        assert ctx.ops[0].kind == OpKind.READ
        assert ctx.ops[0].row == 3

    def test_read_your_own_write(self):
        ctx = BufferedContext(self.db)
        ctx.write("accounts", 2, "balance", 55)
        assert ctx.read("accounts", 2, "balance") == 55
        # database untouched until apply
        assert self.db.table("accounts").read(2, "balance") == 1000

    def test_read_your_own_add(self):
        ctx = BufferedContext(self.db)
        ctx.add("accounts", 2, "balance", 7)
        ctx.add("accounts", 2, "balance", 3)
        assert ctx.read("accounts", 2, "balance") == 1010

    def test_write_overrides_pending_add(self):
        ctx = BufferedContext(self.db)
        ctx.add("accounts", 2, "balance", 7)
        ctx.write("accounts", 2, "balance", 1)
        assert ctx.read("accounts", 2, "balance") == 1

    def test_insert_visible_after_apply(self):
        ctx = BufferedContext(self.db)
        ctx.insert("accounts", 100, {"balance": 5})
        apply_local_sets(self.db, ctx.local)
        assert self.db.table("accounts").read(
            self.db.table("accounts").lookup(100), "balance"
        ) == 5

    def test_insert_existing_key_is_logic_abort(self):
        ctx = BufferedContext(self.db)
        with pytest.raises(TransactionAborted):
            ctx.insert("accounts", 3, {"balance": 5})

    def test_double_insert_same_key_rejected(self):
        ctx = BufferedContext(self.db)
        ctx.insert("accounts", 200, {})
        with pytest.raises(TransactionError):
            ctx.insert("accounts", 200, {})

    def test_key_at(self):
        ctx = BufferedContext(self.db)
        assert ctx.key_at("accounts", 5) == 5
        assert ctx.ops[-1].kind == OpKind.READ

    def test_abort_raises(self):
        ctx = BufferedContext(self.db)
        with pytest.raises(TransactionAborted):
            ctx.abort("nope")

    def test_apply_local_sets_order(self):
        ctx = BufferedContext(self.db)
        ctx.write("accounts", 1, "balance", 10)
        ctx.add("accounts", 1, "flags", 2)
        apply_local_sets(self.db, ctx.local)
        t = self.db.table("accounts")
        assert t.read(1, "balance") == 10
        assert t.read(1, "flags") == 2

    def test_nbytes_counts_cells(self):
        ctx = BufferedContext(self.db)
        assert ctx.local.nbytes == 0
        ctx.write("accounts", 1, "balance", 10)
        ctx.insert("accounts", 300, {"balance": 1, "flags": 0})
        assert ctx.local.nbytes == 8 + (8 + 4 * 2)

    def test_secondary_lookup_missing_index(self):
        ctx = BufferedContext(self.db)
        with pytest.raises(TransactionError):
            ctx.rows_by_secondary("accounts", "zzz", 1)


class TestProcedureRegistry:
    def test_register_and_get(self):
        reg = ProcedureRegistry()

        @reg.register("p")
        def p(ctx):
            pass

        assert reg.get("p") is p
        assert "p" in reg
        assert reg.names() == ["p"]

    def test_register_direct(self):
        reg = ProcedureRegistry()
        fn = lambda ctx: None
        reg.register("q", fn)
        assert reg.get("q") is fn

    def test_duplicate_rejected(self):
        reg = ProcedureRegistry()
        reg.register("p", lambda ctx: None)
        with pytest.raises(TransactionError):
            reg.register("p", lambda ctx: None)

    def test_unknown_rejected(self):
        with pytest.raises(TransactionError):
            ProcedureRegistry().get("nope")


class TestTidAssignment:
    def test_fresh_tids_sequential(self):
        txns = [txn("p"), txn("p"), txn("p")]
        nxt = assign_tids(txns, 10)
        assert [t.tid for t in txns] == [10, 11, 12]
        assert nxt == 13

    def test_existing_tids_preserved(self):
        t0 = Transaction("p", (), tid=5)
        t1 = txn("p")
        nxt = assign_tids([t0, t1], 100)
        assert t0.tid == 5
        assert t1.tid == 100
        assert nxt == 101

    def test_reset_for_execution(self):
        t = Transaction("p", (), tid=1, status=TxnStatus.ABORTED)
        t.ops = [object()]
        t.reset_for_execution()
        assert t.ops == []
        assert t.status is TxnStatus.PENDING
        assert t.attempts == 1


class TestBatchScheduler:
    def test_batch_formation(self):
        s = BatchScheduler(batch_size=2)
        s.admit([txn("p"), txn("p"), txn("p")])
        b1 = s.next_batch()
        assert len(b1) == 2 and [t.tid for t in b1] == [0, 1]
        b2 = s.next_batch()
        assert len(b2) == 1 and b2[0].tid == 2

    def test_retries_lead_batches_in_tid_order(self):
        s = BatchScheduler(batch_size=4)
        s.admit([txn("p") for _ in range(4)])
        batch = s.next_batch()
        aborted = [batch[3], batch[1]]
        s.requeue_aborted(aborted)
        s.admit([txn("p") for _ in range(4)])
        nxt = s.next_batch()
        assert [t.tid for t in nxt[:2]] == [1, 3]
        assert len(nxt) == 4

    def test_retry_delay_two_batches(self):
        s = BatchScheduler(batch_size=2, retry_delay_batches=2)
        s.admit([txn("p"), txn("p")])
        batch = s.next_batch()  # batch_index now 1
        s.requeue_aborted([batch[0]])
        assert s.next_batch() == []  # not eligible yet (index 1)
        nxt = s.next_batch()  # index 2: eligible
        assert [t.tid for t in nxt] == [0]

    def test_unadmitted_abort_rejected(self):
        s = BatchScheduler(batch_size=2)
        with pytest.raises(TransactionError):
            s.requeue_aborted([txn("p")])

    def test_backlog_and_has_work(self):
        s = BatchScheduler(batch_size=2)
        assert not s.has_work()
        s.admit([txn("p")])
        assert s.backlog == 1
        s.next_batch()
        assert not s.has_work()

    def test_invalid_params(self):
        with pytest.raises(TransactionError):
            BatchScheduler(batch_size=0)
        with pytest.raises(TransactionError):
            BatchScheduler(batch_size=1, retry_delay_batches=0)


class TestDecomposition:
    def make_txns(self):
        db, registry = build_bank(accounts=32)
        txns = []
        for i in range(8):
            t = txn("transfer", i, i + 1, 5)
            t.tid = i
            ctx = BufferedContext(db)
            registry.get(t.procedure_name)(ctx, *t.params)
            t.ops = ctx.ops
            txns.append(t)
        # mix in deposits so op streams differ between threads
        for i in range(8):
            t = txn("deposit", i, 1)
            t.tid = 8 + i
            ctx = BufferedContext(db)
            registry.get(t.procedure_name)(ctx, *t.params)
            t.ops = ctx.ops
            txns.append(t)
        return txns

    def test_grouped_has_no_divergence(self):
        plan = plan_grouped(self.make_txns())
        assert plan.divergent_branches == 0
        assert plan.mode == "grouped"
        assert plan.total_ops == sum(len(t.ops) for t in self.make_txns())

    def test_naive_diverges_on_mixed_streams(self):
        plan = plan_naive(self.make_txns())
        assert plan.divergent_branches > 0
        assert plan.mode == "naive"

    def test_grouped_fewer_or_equal_warps_lane_steps(self):
        txns = self.make_txns()
        g = plan_grouped(txns)
        n = plan_naive(txns)
        assert g.utilization >= n.utilization

    def test_empty_batch(self):
        g = plan_grouped([])
        assert g.warps == 0 and g.total_ops == 0
        n = plan_naive([])
        assert n.warps == 0

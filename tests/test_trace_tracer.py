"""Unit tests for the repro.trace primitives: Tracer and MetricsRegistry."""

import json

import pytest

from repro.errors import DeviceError
from repro.trace import (
    BATCH_TRACK,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Tracer,
    validate_nesting,
)

pytestmark = pytest.mark.trace


# -- sync spans -------------------------------------------------------------

def test_begin_end_nesting_depth_and_parent():
    t = Tracer()
    t.begin("outer", "s0", 0.0)
    t.begin("inner", "s0", 10.0)
    inner = t.end("s0", 20.0)
    outer = t.end("s0", 30.0)
    assert (outer.depth, outer.parent) == (0, -1)
    assert inner.depth == 1
    assert t.spans[inner.parent] is outer
    assert inner.duration_ns == 10.0
    assert t.open_depth("s0") == 0
    assert validate_nesting(t) == []


def test_complete_nests_under_open_span():
    t = Tracer()
    t.begin("phase:execute", "compute", 0.0, cat="phase")
    kernel = t.complete("execute", "compute", 2.0, 5.0, args={"threads": 4})
    t.end("compute", 10.0)
    assert kernel.depth == 1
    assert t.spans[kernel.parent].name == "phase:execute"
    assert kernel.args == {"threads": 4}
    assert t.total_ns("execute", "compute") == 5.0


def test_end_without_begin_raises():
    t = Tracer()
    with pytest.raises(DeviceError):
        t.end("s0", 1.0)


def test_end_before_start_raises():
    t = Tracer()
    t.begin("a", "s0", 10.0)
    with pytest.raises(DeviceError):
        t.end("s0", 5.0)


def test_tracks_and_spans_on():
    t = Tracer()
    t.complete("k", "h2d", 0.0, 1.0)
    t.complete("k", "d2h", 0.0, 1.0)
    assert t.tracks() == ["d2h", "h2d"]
    assert [s.track for s in t.spans_on("h2d")] == ["h2d"]


def test_reset_clears_everything():
    t = Tracer()
    t.begin("a", "s0", 0.0)
    t.async_span("b", id=1, start_ns=0.0, end_ns=1.0)
    t.flow_start("e", "s0", 0.0)
    t.instant("i", "s0", 0.0)
    t.counter("c", 0.0, v=1.0)
    t.reset()
    assert not t.spans and not t.async_spans and not t.flows
    assert not t.instants and not t.counters
    assert t.open_depth("s0") == 0
    # flow ids restart from zero
    assert t.flow_start("e", "s0", 0.0) == 0


# -- validate_nesting -------------------------------------------------------

def test_validate_flags_child_escaping_parent():
    t = Tracer()
    t.begin("parent", "s0", 0.0)
    t.complete("child", "s0", 5.0, 100.0)  # ends long after the parent
    t.end("s0", 10.0)
    problems = validate_nesting(t)
    assert any("escapes parent" in p for p in problems)


def test_validate_flags_sibling_overlap():
    t = Tracer()
    t.complete("a", "s0", 0.0, 10.0)
    t.complete("b", "s0", 5.0, 10.0)
    problems = validate_nesting(t)
    assert any("overlap" in p for p in problems)


def test_validate_flags_leftover_open_span():
    t = Tracer()
    t.begin("open", "s0", 0.0)
    problems = validate_nesting(t)
    assert any("left open" in p for p in problems)


# -- chrome export ----------------------------------------------------------

def test_to_chrome_event_structure():
    t = Tracer()
    t.begin("phase:execute", "compute", 1000.0, cat="phase")
    t.complete("execute", "compute", 1000.0, 2000.0)
    t.end("compute", 4000.0)
    t.async_span("batch 0", id=0, start_ns=0.0, end_ns=5000.0,
                 args={"committed": 3})
    fid = t.flow_start("h2d_done", "h2d", 500.0)
    t.flow_finish("h2d_done", fid, "compute", 900.0)
    t.instant("device_sync", "compute", 4500.0)
    t.counter("commit_rate", 5000.0, rate=0.75)

    trace = t.to_chrome()
    events = trace["traceEvents"]
    by_ph = {}
    for ev in events:
        by_ph.setdefault(ev["ph"], []).append(ev)

    # one thread_name metadata record per track
    names = {ev["args"]["name"] for ev in by_ph["M"]}
    assert names == {"compute", "h2d", BATCH_TRACK}
    # X events carry µs timestamps (ns / 1e3)
    execute = next(e for e in by_ph["X"] if e["name"] == "execute")
    assert execute["ts"] == 1.0 and execute["dur"] == 2.0
    # async envelopes pair b/e on the same id
    assert len(by_ph["b"]) == len(by_ph["e"]) == 1
    assert by_ph["b"][0]["id"] == by_ph["e"][0]["id"]
    # flow finish binds to the enclosing slice
    assert by_ph["f"][0]["bp"] == "e"
    assert by_ph["s"][0]["id"] == by_ph["f"][0]["id"]
    assert by_ph["C"][0]["args"] == {"rate": 0.75}
    assert by_ph["i"][0]["name"] == "device_sync"


def test_write_round_trips_json(tmp_path):
    t = Tracer()
    t.complete("k", "s0", 0.0, 1.0)
    path = tmp_path / "trace.json"
    t.write(str(path))
    loaded = json.loads(path.read_text())
    assert loaded["traceEvents"]
    assert loaded["displayTimeUnit"] == "ns"


# -- metrics ----------------------------------------------------------------

def test_counter_monotone():
    c = Counter("n")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_extremes_and_mean():
    g = Gauge("n")
    for v in (2.0, 8.0, 5.0):
        g.set(v)
    assert g.value == 5.0
    assert (g.min, g.max) == (2.0, 8.0)
    assert g.mean == pytest.approx(5.0)


def test_histogram_numeric_and_label_keys():
    h = Histogram("n")
    h.observe(0, count=3)
    h.observe(1)
    h.observe("waw", count=2)
    h.observe(0, count=0)  # no-op
    assert h.counts[0] == 3 and h.counts["waw"] == 2
    assert h.total == 6
    with pytest.raises(ValueError):
        h.observe(0, count=-1)


def test_registry_get_or_create_and_snapshot():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    reg.counter("a").inc(3)
    reg.gauge("g").set(1.5)
    reg.histogram("h").observe("x", 2)
    snap = reg.snapshot()
    assert snap["counters"] == {"a": 3}
    assert snap["gauges"]["g"]["last"] == 1.5
    assert snap["histograms"]["h"] == {"x": 2}
    # JSON-ready: plain types only
    json.dumps(snap)
    text = reg.render()
    assert "a = 3" in text and "h = {x: 2}" in text
    reg.reset()
    assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


def test_unset_gauge_snapshot_is_zero():
    reg = MetricsRegistry()
    reg.gauge("g")
    snap = reg.snapshot()["gauges"]["g"]
    assert snap == {"last": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}

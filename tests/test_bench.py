"""Bench harnesses: smoke every experiment at tiny scale and assert the
paper's qualitative shapes."""

from __future__ import annotations

import pytest

from repro.bench import (
    fig6,
    fig7,
    reporting,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
)
from repro.bench.common import scaled, tpcc_bench
from repro.errors import BenchmarkError

TINY = 64.0  # divide paper sizes by 64 for test speed


class TestReporting:
    def test_format_table_alignment(self):
        text = reporting.format_table("T", ["a", "bb"], [[1, 2.5], ["x", 10000.0]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "bb" in lines[2]
        assert "10,000" in text

    def test_units(self):
        assert reporting.mtps(2e6) == 2.0
        assert reporting.us(1500.0) == 1.5


class TestCommon:
    def test_scaled(self):
        assert scaled(16384, 8.0) == 2048
        assert scaled(10, 100.0, minimum=3) == 3

    def test_tpcc_bench_scales_together(self):
        bench = tpcc_bench(2, scale=16.0)
        assert bench.batch_size == 1024
        assert bench.database.table("item").num_rows == 6250


class TestTable2:
    def test_shape_ltpg_beats_gacco_on_mixed_and_gacco_wins_payment(self):
        # GaccO's payment-only advantage comes from hot-row contention,
        # which needs a reasonable payments-per-warehouse ratio: use a
        # moderate scale here rather than the tiny smoke scale.
        result = table2.run(
            scale=16.0,
            rounds=2,
            systems=("ltpg", "gacco", "calvin"),
            configs=((50, 8), (0, 8)),
        )
        assert result.mtps[("ltpg", 50, 8)] > result.mtps[("calvin", 50, 8)]
        assert result.mtps[("gacco", 0, 8)] > result.mtps[("ltpg", 0, 8)]
        text = result.format()
        assert "ltpg" in text and "50-8" in text

    def test_gpu_systems_beat_cpu_systems_on_mixed(self):
        result = table2.run(
            scale=TINY,
            rounds=2,
            systems=("ltpg", "aria", "bohm"),
            configs=((50, 8),),
        )
        assert result.mtps[("ltpg", 50, 8)] > result.mtps[("aria", 50, 8)]
        assert result.mtps[("aria", 50, 8)] > result.mtps[("bohm", 50, 8)]


class TestTable3:
    def test_throughput_improves_with_batch_size(self):
        result = table3.run(
            scale=TINY,
            rounds=2,
            batch_sizes=(2**8, 2**14),
            configs=((50, 8),),
        )
        small = result.mtps[(2**8, 50, 8)]
        large = result.mtps[(2**14, 50, 8)]
        assert large > small
        assert "2^14" in result.format()


class TestTable4:
    def test_ltpg_latency_below_gacco(self):
        result = table4.run(scale=TINY, rounds=2, configs=((8, 8_192),))
        lat_l, xfer_l = result.cells[("ltpg", 8, 8_192)]
        lat_g, xfer_g = result.cells[("gacco", 8, 8_192)]
        assert lat_l < lat_g
        assert xfer_l < xfer_g


class TestTable5:
    def test_copy_cost_grows_with_batch(self):
        result = table5.run(scale=TINY, rounds=2, batch_sizes=(1_024, 65_536))
        assert result.rwset_us[65_536] > result.rwset_us[1_024]


class TestTable6:
    def test_optimizations_lift_payment_commit_rate(self):
        result = table6.run(scale=TINY, rounds=2, configs=((8, 16_384),))
        with_opt = result.cells[(8, 16_384, True)]
        without = result.cells[(8, 16_384, False)]
        assert with_opt.rate_payment > 4 * without.rate_payment
        assert abs(with_opt.rate_neworder - without.rate_neworder) < 0.2
        assert with_opt.rate_total > without.rate_total


class TestTable7:
    def test_large_buckets_cut_marking_latency(self):
        result = table7.run()
        for grid, block in table7.GEOMETRIES:
            for h in table7.HASH_SIZES:
                std = result.cells[(grid, block, h, 1)]
                big = result.cells[(grid, block, h, 32)]
                assert big.mark_us < std.mark_us
                # reading is insensitive to bucket size
                assert big.read_us == pytest.approx(std.read_us)

    def test_contention_grows_with_smaller_hash(self):
        result = table7.run()
        hot = result.cells[(1024, 1024, 1, 1)]
        cold = result.cells[(1024, 1024, 512, 1)]
        assert hot.mark_us > cold.mark_us


class TestTable8:
    def test_large_fraction_is_small_and_flat(self):
        result = table8.run(scale=TINY, warehouses=(8, 64))
        large_8, std_8 = result.pct[8]
        large_64, _ = result.pct[64]
        assert large_8 + std_8 == pytest.approx(100.0)
        assert large_8 < 10.0
        assert large_64 < 10.0


class TestTable9:
    def test_unified_memory_inflates_phases(self):
        result = table9.run(scale=64.0, rounds=1)
        zc = result.phases[table9.ZERO_COPY_SCALES[0]]
        um = result.phases[table9.UNIFIED_SCALES[-1]]
        assert result.modes[32] == "zero_copy"
        assert result.modes[2048] == "unified"
        assert um["execute"] > zc["execute"]


class TestFig6:
    def test_commit_rate_band_and_latency_growth(self):
        # spread the batch sizes: at smoke scale adjacent sizes sit in
        # the fixed-cost-dominated regime where latencies nearly tie
        result = fig6.run_a(scale=TINY, rounds=2, batch_sizes=(2**8, 2**16))
        assert result.latency_us[2**16] > result.latency_us[2**8]
        assert 0.0 < result.commit_rate[2**16] <= 1.0

    def test_each_optimization_step_helps(self):
        result = fig6.run_b(scale=TINY, rounds=2)
        base = result.mtps["baseline"]
        assert result.mtps["+high-contention"] > base
        assert result.mtps["+hash-buckets"] >= result.mtps["+high-contention"] * 0.9
        assert "vs baseline" in result.format()


class TestFig7:
    def test_read_only_beats_scans(self):
        result = fig7.run(
            scale=TINY,
            rounds=2,
            workloads=("c", "e"),
            batch_sizes=(2**10,),
            data_sizes=(10_000,),
        )
        c = result.mtps[("c", 2**10, 10_000)]
        e = result.mtps[("e", 2**10, 10_000)]
        assert c > e

    def test_update_heavy_below_read_heavy(self):
        result = fig7.run(
            scale=TINY,
            rounds=2,
            workloads=("a", "b"),
            batch_sizes=(2**10,),
            data_sizes=(10_000,),
        )
        assert result.mtps[("b", 2**10, 10_000)] >= result.mtps[("a", 2**10, 10_000)]


class TestRunnerValidation:
    def test_zero_batches_rejected(self):
        from repro.bench.runner import steady_state_run

        bench = tpcc_bench(2, scale=TINY)
        with pytest.raises(BenchmarkError):
            steady_state_run(bench.engine(), bench.generator, 32, 0)

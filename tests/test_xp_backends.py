"""Unit tests for the ``repro.xp`` array-backend shim.

Covers the registry (name lookup, clean errors for unknown/unavailable
backends, ``auto`` resolution), the NumPy reference backend's
zero-copy/zero-ledger contract, and the ``mockgpu`` contract checker:
primitive parity against NumPy, transfer-ledger accounting, the strict
kernel-phase rules (implicit host round-trips raise, scalar-reduction
readbacks are counted but legal), float-upcast detection, and the
simulated dispatch/sync event ordering.  Full-engine cross-backend
byte-identity lives in ``tests/test_backend_equivalence.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import BackendContractError, BackendError, BackendUnavailable
from repro.xp import (
    AUTO_ORDER,
    BACKEND_NAMES,
    MockGpuBackend,
    available_backends,
    get_backend,
    resolve_backend,
)

pytestmark = pytest.mark.backend


# ---------------------------------------------------------------------------
# Registry: lookup, availability, auto resolution
# ---------------------------------------------------------------------------
def test_host_backends_always_available():
    avail = available_backends()
    assert "numpy" in avail
    assert "mockgpu" in avail
    assert set(avail) <= set(BACKEND_NAMES)


def test_unknown_backend_name_raises_backend_error():
    with pytest.raises(BackendError, match="unknown array backend"):
        get_backend("gpu")
    with pytest.raises(BackendError, match="numpy"):
        get_backend("")  # message lists the valid names


def test_unavailable_device_backends_fail_fast():
    for name in ("cupy", "torch"):
        if name in available_backends():
            continue  # a real device answers on this host; nothing to test
        with pytest.raises(BackendUnavailable, match=name):
            get_backend(name)


def test_auto_resolution_walks_preference_order():
    backend = resolve_backend("auto")
    assert backend.name in AUTO_ORDER
    # without a device library installed, auto must land on the reference
    if not any(n in available_backends() for n in ("cupy", "torch")):
        assert backend.name == "numpy"
    # get_backend("auto") is the same path
    assert get_backend("auto").name == backend.name


def test_numpy_backend_is_a_shared_singleton():
    assert get_backend("numpy") is get_backend("numpy")


def test_mockgpu_instances_are_isolated():
    b1, b2 = get_backend("mockgpu"), get_backend("mockgpu")
    assert b1 is not b2
    arr = b1.from_host(np.arange(4, dtype=np.int64))
    assert b1.is_device_array(arr)
    assert not b2.is_device_array(arr)  # per-instance device class
    assert b1.transfer_stats().h2d_count == 1
    assert b2.transfer_stats().h2d_count == 0


def test_device_info_identity_blocks():
    for name in ("numpy", "mockgpu"):
        info = get_backend(name).device_info()
        assert info["backend"] == name
        assert "version" in info and "library" in info


# ---------------------------------------------------------------------------
# NumPy reference: identity crossings, zero ledger
# ---------------------------------------------------------------------------
def test_numpy_crossings_are_identity_and_unaccounted():
    xp = get_backend("numpy")
    a = np.arange(8, dtype=np.int64)
    assert xp.from_host(a) is a
    assert xp.to_host(a) is a
    assert xp.item(a[:1]) == 0
    assert xp.tolist(a) == list(range(8))
    snap = xp.transfer_stats().snapshot()
    assert all(v == 0 for v in snap.values()), snap
    assert not xp.is_device


# ---------------------------------------------------------------------------
# mockgpu primitive parity against the reference
# ---------------------------------------------------------------------------
_A = np.array([5, 1, 4, 1, 3, 9, 2, 6], dtype=np.int64)
_B = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.int64)

_PRIMITIVES = {
    "asarray": lambda xp, a, b: xp.asarray(a, dtype=np.int64),
    "zeros": lambda xp, a, b: xp.zeros(5, dtype=np.int64),
    "ones": lambda xp, a, b: xp.ones((2, 3), dtype=np.int64),
    "full": lambda xp, a, b: xp.full(4, -7, dtype=np.int64),
    "arange": lambda xp, a, b: xp.arange(6, dtype=np.int64),
    "concatenate": lambda xp, a, b: xp.concatenate([a, b]),
    "stack": lambda xp, a, b: xp.stack([a, b]),
    "repeat": lambda xp, a, b: xp.repeat(a, b),
    "broadcast_to": lambda xp, a, b: xp.broadcast_to(a[:4], (2, 4)),
    "where": lambda xp, a, b: xp.where(b.astype(bool), a, -a),
    "astype": lambda xp, a, b: xp.astype(a.astype(np.int32), np.int64),
    "argsort": lambda xp, a, b: xp.argsort(a, stable=True),
    "lexsort": lambda xp, a, b: xp.lexsort((a, b)),
    "sort": lambda xp, a, b: xp.sort(a),
    "unique": lambda xp, a, b: xp.unique(a),
    "searchsorted": lambda xp, a, b: xp.searchsorted(np.sort(a), b + 3),
    "flatnonzero": lambda xp, a, b: xp.flatnonzero(b),
    "cumsum": lambda xp, a, b: xp.cumsum(a),
    "bincount": lambda xp, a, b: xp.bincount(b, minlength=4),
}


@pytest.mark.parametrize("op", sorted(_PRIMITIVES))
def test_mockgpu_primitive_matches_numpy(op):
    fn = _PRIMITIVES[op]
    ref = fn(get_backend("numpy"), _A.copy(), _B.copy())
    mock = get_backend("mockgpu")
    dev = fn(mock, mock.from_host(_A.copy()), mock.from_host(_B.copy()))
    host = mock.to_host(dev)
    np.testing.assert_array_equal(host, ref)
    assert host.dtype == np.asarray(ref).dtype
    assert mock.transfer_stats().implicit_syncs == 0


def test_stable_argsort_preserves_tie_order():
    keys = np.array([2, 1, 2, 1, 2, 1], dtype=np.int64)
    for name in ("numpy", "mockgpu"):
        xp = get_backend(name)
        order = xp.to_host(xp.argsort(xp.from_host(keys), stable=True))
        np.testing.assert_array_equal(order, [1, 3, 5, 0, 2, 4])


# ---------------------------------------------------------------------------
# Scatter primitives
# ---------------------------------------------------------------------------
def test_scatter_disjoint_assignment():
    for name in ("numpy", "mockgpu"):
        xp = get_backend(name)
        target = xp.from_host(np.zeros(6, dtype=np.int64))
        xp.scatter(
            target,
            xp.from_host(np.array([4, 1, 2], dtype=np.int64)),
            xp.from_host(np.array([40, 10, 20], dtype=np.int64)),
        )
        np.testing.assert_array_equal(xp.to_host(target), [0, 10, 20, 0, 40, 0])


def test_scatter_add_applies_every_duplicate():
    # np.add.at semantics, not buffered fancy assignment: both updates
    # to index 2 must land
    for name in ("numpy", "mockgpu"):
        xp = get_backend(name)
        target = xp.from_host(np.zeros(4, dtype=np.int64))
        xp.scatter_add(
            target,
            xp.from_host(np.array([2, 2, 0], dtype=np.int64)),
            xp.from_host(np.array([5, 7, 1], dtype=np.int64)),
        )
        np.testing.assert_array_equal(xp.to_host(target), [1, 0, 12, 0])


def test_scatter_min_keeps_elementwise_minimum():
    for name in ("numpy", "mockgpu"):
        xp = get_backend(name)
        target = xp.from_host(np.full(3, 100, dtype=np.int64))
        xp.scatter_min(
            target,
            xp.from_host(np.array([1, 1, 2], dtype=np.int64)),
            xp.from_host(np.array([9, 3, 50], dtype=np.int64)),
        )
        np.testing.assert_array_equal(xp.to_host(target), [100, 3, 50])


def test_mockgpu_scatter_into_host_array_raises_in_phase():
    xp = get_backend("mockgpu")
    host_target = np.zeros(4, dtype=np.int64)  # never shipped to device
    idx = xp.from_host(np.array([1], dtype=np.int64))
    val = xp.from_host(np.array([5], dtype=np.int64))
    with xp.kernel_phase("writeback"):
        with pytest.raises(BackendContractError, match="host array"):
            xp.scatter_add(host_target, idx, val)
    # outside a phase the same call is legal (eager host-side apply)
    xp.scatter_add(host_target, idx, val)
    assert host_target[1] == 5


# ---------------------------------------------------------------------------
# Transfer-ledger accounting
# ---------------------------------------------------------------------------
def test_ledger_counts_bytes_both_directions():
    xp = get_backend("mockgpu")
    host = np.arange(100, dtype=np.int64)  # 800 bytes
    dev = xp.from_host(host)
    t = xp.transfer_stats()
    assert (t.h2d_count, t.h2d_bytes) == (1, 800)
    back = xp.to_host(dev)
    assert (t.d2h_count, t.d2h_bytes) == (1, 800)
    np.testing.assert_array_equal(back, host)
    assert not isinstance(back, xp.DeviceArray)  # plain ndarray on host
    assert xp.item(dev[:1]) == 0
    assert t.d2h_bytes == 808  # one 8-byte word read back
    xp.tolist(dev)
    assert t.d2h_bytes == 1608
    assert t.count == t.h2d_count + t.d2h_count == 4
    snap = t.snapshot()
    assert snap["count"] == 4 and snap["implicit_syncs"] == 0
    xp.reset_transfers()
    assert xp.transfer_stats().count == 0


def test_from_host_of_device_array_is_free():
    xp = get_backend("mockgpu")
    dev = xp.from_host(np.arange(4, dtype=np.int64))
    assert xp.from_host(dev) is dev
    assert xp.transfer_stats().h2d_count == 1  # only the first shipped


# ---------------------------------------------------------------------------
# Kernel-phase contract: implicit syncs, scalar readbacks
# ---------------------------------------------------------------------------
def test_implicit_round_trips_raise_inside_phase():
    xp = get_backend("mockgpu")
    dev = xp.from_host(np.arange(4, dtype=np.int64))
    one = xp.from_host(np.array([3], dtype=np.int64))
    cases = {
        "int": lambda: int(one),
        "bool": lambda: bool(one),
        "iter": lambda: list(dev),
        "tolist": lambda: dev.tolist(),
        "item": lambda: one.item(),
        "scalar-index": lambda: dev[0],
    }
    for what, trip in cases.items():
        with xp.kernel_phase("execute"):
            with pytest.raises(BackendContractError, match="implicit"):
                trip()
        assert xp.phase is None  # phase closed despite the raise


def test_scalar_reduction_is_a_counted_readback_not_a_violation():
    xp = get_backend("mockgpu")
    dev = xp.from_host(np.arange(10, dtype=np.int64))
    t = xp.transfer_stats()
    d2h0 = t.d2h_count
    with xp.kernel_phase("execute"):
        total = dev.sum()  # device reduce + one-word readback
        flag = dev.any()
    assert total == 45 and not isinstance(total, np.ndarray)
    assert flag is True or flag == True  # noqa: E712 - np.bool_ tolerated
    assert t.d2h_count == d2h0 + 2
    assert t.implicit_syncs == 0
    # axis-wise reductions stay on the device and cost nothing
    mat = xp.from_host(np.ones((3, 4), dtype=np.int64))
    with xp.kernel_phase("execute"):
        per_row = mat.sum(axis=1)
    assert isinstance(per_row, xp.DeviceArray)
    assert t.d2h_count == d2h0 + 2


def test_eager_access_between_phases_counts_as_traffic():
    xp = get_backend("mockgpu")
    dev = xp.from_host(np.arange(4, dtype=np.int64))
    t = xp.transfer_stats()
    d2h0 = t.d2h_count
    assert dev.tolist() == [0, 1, 2, 3]  # legal outside phases...
    assert t.d2h_count == d2h0 + 1  # ...but it is accounted
    assert t.implicit_syncs == 0
    assert ("d2h", "eager:tolist") in t.events


def test_non_strict_mode_counts_violations_instead_of_raising():
    xp = MockGpuBackend(strict=False)
    one = xp.from_host(np.array([7], dtype=np.int64))
    with xp.kernel_phase("conflict"):
        assert int(one) == 7
    t = xp.transfer_stats()
    assert t.implicit_syncs == 1
    assert ("implicit", "conflict:int") in t.events


# ---------------------------------------------------------------------------
# Dtype discipline: float upcasts are contract violations
# ---------------------------------------------------------------------------
def test_float_result_raises_in_strict_mode():
    xp = get_backend("mockgpu")
    with pytest.raises(BackendContractError, match="int64-disciplined"):
        xp.from_host(np.array([0.5, 1.5]))  # unpinned float input
    with pytest.raises(BackendContractError, match="astype"):
        xp.astype(xp.from_host(np.arange(3, dtype=np.int64)), np.float64)


def test_float_result_recorded_in_non_strict_mode():
    xp = MockGpuBackend(strict=False)
    xp.astype(xp.from_host(np.arange(3, dtype=np.int64)), np.float64)
    assert ("astype", "float64") in xp.upcasts


def test_int64_pipeline_records_no_upcasts():
    xp = get_backend("mockgpu")
    a = xp.from_host(np.arange(16, dtype=np.int64))
    with xp.kernel_phase("execute"):
        order = xp.argsort(a * 3 % 7, stable=True)
        xp.cumsum(a[order])
    assert xp.upcasts == []


# ---------------------------------------------------------------------------
# Simulated dispatch ordering
# ---------------------------------------------------------------------------
def test_dispatch_events_record_issue_order_and_phase_sync():
    xp = get_backend("mockgpu")
    with xp.kernel_phase("execute"):
        assert xp.phase == "execute"
        xp.arange(4, dtype=np.int64)
        xp.cumsum(xp.from_host(np.arange(4, dtype=np.int64)))
    events = xp.transfer_stats().events
    begin = events.index(("phase", "begin:execute"))
    d1 = events.index(("dispatch", "execute:arange"))
    d2 = events.index(("dispatch", "execute:cumsum"))
    end = events.index(("phase", "end:execute"))
    sync = events.index(("sync", "execute"))
    # kernels issue in program order inside the phase; the sync point
    # (the engine's phase boundary) lands after every dispatch
    assert begin < d1 < d2 < end < sync
    assert xp.transfer_stats().dispatches == 2


def test_nested_kernel_phases_fold_into_the_outer_region():
    xp = get_backend("mockgpu")
    with xp.kernel_phase("execute"):
        with xp.kernel_phase("inner"):
            assert xp.phase == "execute"  # inner region is transparent
        assert xp.phase == "execute"  # and does not close the outer one
    assert xp.phase is None
    kinds = [e for e in xp.transfer_stats().events if e[0] == "phase"]
    assert kinds == [("phase", "begin:execute"), ("phase", "end:execute")]


# ---------------------------------------------------------------------------
# The exported BackendContract: one source of truth for mockgpu (runtime)
# and kernellint (static)
# ---------------------------------------------------------------------------
def test_contract_surface_is_implemented_by_backends():
    from repro.xp import CONTRACT

    for name in ("numpy", "mockgpu"):
        backend = get_backend(name)
        for method in sorted(CONTRACT.all_methods()):
            assert callable(getattr(backend, method)), (
                f"{name} backend missing contract method {method!r}"
            )


def test_contract_groups_are_consistent():
    from repro.xp import CONTRACT

    kernels = set(CONTRACT.kernels)
    assert set(CONTRACT.commutative_scatters) <= kernels
    assert set(CONTRACT.assign_scatters) <= kernels
    assert not (set(CONTRACT.crossings) & kernels)
    assert CONTRACT.dtype == "int64"


def test_mockgpu_scalar_readbacks_come_from_contract():
    # every contract readback is a sanctioned one-word D2H on a device
    # array: legal inside a kernel phase, and accounted on the ledger
    from repro.xp import CONTRACT

    xp = get_backend("mockgpu")
    arr = xp.from_host(np.arange(8, dtype=np.int64))
    xp.reset_transfers()
    with xp.kernel_phase("execute"):
        for i, name in enumerate(CONTRACT.scalar_readbacks):
            assert hasattr(arr, name), f"DeviceArray missing {name!r}"
            getattr(arr, name)()
            assert xp.transfer_stats().d2h_count == i + 1
    assert xp.transfer_stats().implicit_syncs == 0


def test_kernellint_allowed_calls_match_contract():
    # the static linter's allow-set is derived from the same CONTRACT
    # object mockgpu enforces at runtime — they cannot drift apart
    from repro.analysis import kernellint
    from repro.xp import CONTRACT

    assert CONTRACT.all_methods() <= kernellint._ALLOWED_XP
    assert set(CONTRACT.scalar_readbacks) == set(
        kernellint._SCALAR_READBACKS
    )
    assert set(CONTRACT.crossings) - {"from_host"} == set(
        kernellint._XP_TO_HOST
    )

"""Differential tests for the process-parallel executor
(``LTPGConfig.parallel_workers``).

The sharded execute phase must be *byte-identical* to the in-process
batched path for any worker count: statuses, abort reasons,
per-transaction op streams (``txn.ops.raw``), simulated phase times and
the final database digest.  Each test runs identical batch specs with
``parallel_workers=0`` and with worker pools of several sizes and
compares the full observable surface, including shard boundaries that
don't divide evenly, groups smaller than the pool, procedures without
twins, and in-twin fallback lanes.

Also covered here: the shared-memory epoch protocol (append replay and
re-export after ``Table._grow``), configuration validation, pool
lifecycle/teardown (no leaked processes or ``/dev/shm`` segments), and
the assembly-prefetch runner's RunStats identity.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import os
import time

import pytest

from helpers import build_bank
from repro.bench.runner import steady_state_run
from repro.core import LTPGConfig, LTPGEngine
from repro.errors import ConfigError, ParallelExecutionError
from repro.parallel import SHM_PREFIX, shard_sizes
from repro.txn import Transaction
from repro.workloads.smallbank import build_smallbank
from repro.workloads.tpcc import DELAYED_COLUMNS, SPLIT_COLUMNS, TpccMix, build_tpcc
from repro.workloads.ycsb import build_ycsb
from repro.workloads.ycsb.generator import ycsb_delayed_columns

pytestmark = pytest.mark.parallel

WORKER_COUNTS = (1, 2, 4)

FULL_MIX = TpccMix(
    neworder=0.4, payment=0.3, orderstatus=0.1, stocklevel=0.1, delivery=0.1
)


def _observe(engine, batches):
    """Run ``batches`` (lists of (name, params) specs) and capture every
    path-sensitive observable; closes the engine (and so its pool)."""
    out = []
    with engine:
        for specs in batches:
            batch = [Transaction(n, p, tid=i) for i, (n, p) in enumerate(specs)]
            result = engine.run_batch(batch)
            out.append(
                {
                    "committed": result.stats.committed,
                    "aborted": result.stats.aborted,
                    "logic_aborted": result.stats.logic_aborted,
                    "statuses": [t.status for t in batch],
                    "reasons": [t.abort_reason for t in batch],
                    "ops": [t.ops.raw for t in batch],
                    "phase_ns": dict(result.stats.phase_ns),
                    "rwset_ns": result.stats.rwset_ns,
                    "abort_reasons": dict(result.stats.abort_reasons),
                    "by_proc": dict(result.stats.committed_by_proc),
                }
            )
        out.append(engine.database.state_digest())
    return out


def _shm_segments() -> list[str]:
    try:
        return [f for f in os.listdir("/dev/shm") if f.startswith(SHM_PREFIX)]
    except FileNotFoundError:  # non-Linux: rely on the lifecycle tests
        return []


def _across_worker_counts(build, batches, counts=WORKER_COUNTS, **config_kwargs):
    """Assert parallel_workers=0 == each worker count, pool torn down."""
    runs = {}
    for workers in (0, *counts):
        engine = build(
            dict(
                columnar_ops=True,
                batched_exec=True,
                parallel_workers=workers,
                **config_kwargs,
            )
        )
        runs[workers] = _observe(engine, batches)
    for workers in counts:
        assert runs[workers] == runs[0], f"divergence at {workers} workers"
    assert _shm_segments() == []


# ---------------------------------------------------------------------------
# The three workloads, identical across worker counts
# ---------------------------------------------------------------------------
def test_tpcc_identical_across_worker_counts():
    _, _, gen = build_tpcc(warehouses=2, num_items=2000, mix=FULL_MIX, seed=7)
    batches = [
        [(t.procedure_name, t.params) for t in gen.make_batch(256)]
        for _ in range(3)
    ]

    def build(mode_kwargs):
        db, registry, _ = build_tpcc(
            warehouses=2, num_items=2000, mix=FULL_MIX, seed=7
        )
        config = LTPGConfig(
            batch_size=256,
            delayed_update=True,
            delayed_columns=DELAYED_COLUMNS,
            split_flags=True,
            split_columns=SPLIT_COLUMNS,
            **mode_kwargs,
        )
        return LTPGEngine(db, registry, config)

    _across_worker_counts(build, batches)


def test_ycsb_identical_across_worker_counts():
    kwargs = dict(num_records=2000, workload="a", zipf_alpha=1.2, seed=5)
    _, _, gen = build_ycsb(**kwargs)
    batches = [
        [(t.procedure_name, t.params) for t in gen.make_batch(256)]
        for _ in range(3)
    ]

    def build(mode_kwargs):
        db, registry, _ = build_ycsb(**kwargs)
        config = LTPGConfig(
            batch_size=256,
            delayed_update=True,
            delayed_columns=ycsb_delayed_columns(),
            **mode_kwargs,
        )
        return LTPGEngine(db, registry, config)

    _across_worker_counts(build, batches)


def test_smallbank_identical_across_worker_counts():
    _, _, gen = build_smallbank(num_accounts=500, zipf_alpha=1.2, seed=3)
    batches = [
        [(t.procedure_name, t.params) for t in gen.make_batch(256)]
        for _ in range(3)
    ]

    def build(mode_kwargs):
        db, registry, _ = build_smallbank(
            num_accounts=500, zipf_alpha=1.2, seed=3
        )
        return LTPGEngine(db, registry, LTPGConfig(batch_size=256, **mode_kwargs))

    _across_worker_counts(build, batches)


# ---------------------------------------------------------------------------
# Odd shard boundaries: groups smaller than the pool, single lanes,
# scalar-only procedures and in-twin fallback lanes in the same batch
# ---------------------------------------------------------------------------
def _deposit_twin(bctx, p):
    lanes = bctx.active_lanes()
    keys = p.column(0)[lanes]
    amounts = p.column(1)[lanes]
    rows, found = bctx.rows_for_keys("accounts", lanes, keys)
    bctx.add("accounts", lanes[found], rows[found], "balance", amounts[found])


def _transfer_twin_fallback_odd(bctx, p):
    """Sends odd lanes to the scalar re-run: with sharding, different
    workers own different subsets of the odd lanes, and every one of
    them must land back in the parent's fallback path."""
    lanes = bctx.active_lanes()
    odd = lanes % 2 == 1
    bctx.fall_back(lanes[odd])
    lanes = lanes[~odd]
    a = p.column(0)[lanes]
    b = p.column(1)[lanes]
    amount = p.column(2)[lanes]
    bal_a, rows_a, found = bctx.read_keys("accounts", lanes, a, "balance")
    lanes, b, amount = lanes[found], b[found], amount[found]
    bal_b, rows_b, found_b = bctx.read_keys("accounts", lanes, b, "balance")
    lanes = lanes[found_b]
    bctx.write(
        "accounts", lanes, rows_a[found_b], "balance",
        bal_a[found_b] - amount[found_b],
    )
    bctx.write("accounts", lanes, rows_b, "balance", bal_b + amount[found_b])


def _mixed_bank():
    db, registry = build_bank(accounts=32)
    registry.register_batched("deposit", _deposit_twin)
    registry.register_batched("transfer", _transfer_twin_fallback_odd)
    return db, registry


def test_mixed_registry_and_fallback_lanes_identical():
    specs = []
    for i in range(48):
        specs.append(("transfer", (i % 32, (i + 7) % 32, 1 + i % 5)))
        specs.append(("deposit", (i % 32, 2 + i % 3)))
        specs.append(("audit", (i % 32, (i + 3) % 32)))
        if i % 11 == 0:
            specs.append(("open_account", (100 + i, 9)))
        if i % 13 == 0:
            specs.append(("bad", (i % 32,)))
    batches = [specs, specs[::-1]]

    def build(mode_kwargs):
        db, registry = _mixed_bank()
        return LTPGEngine(db, registry, LTPGConfig(batch_size=256, **mode_kwargs))

    _across_worker_counts(build, batches)


def test_groups_smaller_than_pool_identical():
    """More workers than lanes: most shards are empty and must simply
    not be dispatched — including the degenerate one-transaction group."""
    batches = [
        [("deposit", (1, 5)), ("deposit", (2, 7)), ("transfer", (3, 4, 1))],
        [("deposit", (5, 1))],
    ]

    def build(mode_kwargs):
        db, registry = _mixed_bank()
        return LTPGEngine(db, registry, LTPGConfig(batch_size=8, **mode_kwargs))

    _across_worker_counts(build, batches, counts=(1, 2, 4, 8))


def test_shard_sizes_contiguous_and_exact():
    assert shard_sizes(10, 4) == [3, 3, 2, 2]
    assert shard_sizes(3, 4) == [1, 1, 1, 0]
    assert shard_sizes(0, 2) == [0, 0]
    assert shard_sizes(8, 1) == [8]
    for lanes in range(0, 17):
        for workers in range(1, 6):
            sizes = shard_sizes(lanes, workers)
            assert sum(sizes) == lanes
            assert sorted(sizes, reverse=True) == sizes


# ---------------------------------------------------------------------------
# Shared-memory epoch protocol: append replay and re-export on growth
# ---------------------------------------------------------------------------
def test_table_growth_reexports_snapshot():
    """Inserts past the exported capacity force ``Table._grow`` in the
    parent (detaching it from the segment) — the next batch must ship a
    fresh export and still be byte-identical."""

    def make_batches(capacity):
        batches = []
        key = 1000
        for _ in range(4):
            specs = [("deposit", (i % 32, 1 + i % 3)) for i in range(16)]
            for _ in range(max(capacity // 2, 8)):
                specs.append(("open_account", (key, 7)))
                key += 1
            batches.append(specs)
        return batches

    def build(mode_kwargs):
        db, registry = _mixed_bank()
        return LTPGEngine(db, registry, LTPGConfig(batch_size=512, **mode_kwargs))

    db_probe, _ = _mixed_bank()
    capacity = db_probe._tables[0]._capacity
    batches = make_batches(capacity)

    # sanity: this workload really does outgrow the initial capacity
    db, registry = _mixed_bank()
    with LTPGEngine(db, registry, LTPGConfig(batch_size=512)) as eng:
        for specs in batches:
            eng.run_batch(
                [Transaction(n, p, tid=i) for i, (n, p) in enumerate(specs)]
            )
    assert db._tables[0]._capacity > capacity

    _across_worker_counts(build, batches, counts=(1, 2))


# ---------------------------------------------------------------------------
# Start methods: identical under fork and spawn
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_identical_under_start_method(start_method):
    if start_method not in mp.get_all_start_methods():
        pytest.skip(f"{start_method} not available on this platform")
    _, _, gen = build_smallbank(num_accounts=300, zipf_alpha=1.2, seed=9)
    batches = [
        [(t.procedure_name, t.params) for t in gen.make_batch(128)]
        for _ in range(2)
    ]

    def build(mode_kwargs):
        db, registry, _ = build_smallbank(
            num_accounts=300, zipf_alpha=1.2, seed=9
        )
        return LTPGEngine(db, registry, LTPGConfig(batch_size=128, **mode_kwargs))

    _across_worker_counts(
        build, batches, counts=(2,), parallel_start_method=start_method
    )


# ---------------------------------------------------------------------------
# Configuration validation
# ---------------------------------------------------------------------------
def test_parallel_with_sanitize_raises_config_error():
    with pytest.raises(ConfigError, match="sanitize"):
        LTPGConfig(
            batch_size=64, batched_exec=True, parallel_workers=2, sanitize=True
        )


def test_parallel_without_batched_exec_raises_config_error():
    with pytest.raises(ConfigError, match="batched_exec"):
        LTPGConfig(batch_size=64, parallel_workers=2)


def test_negative_workers_raises_config_error():
    with pytest.raises(ConfigError, match="parallel_workers"):
        LTPGConfig(batch_size=64, batched_exec=True, parallel_workers=-1)


def test_bad_start_method_raises_config_error():
    with pytest.raises(ConfigError, match="start_method"):
        LTPGConfig(batch_size=64, parallel_start_method="thread")


def test_unpicklable_twin_error_names_the_procedure():
    db, registry = build_bank(accounts=8)

    @registry.register_batched("deposit")
    def deposit_closure(bctx, p):  # a closure: not picklable by name
        _deposit_twin(bctx, p)

    engine = LTPGEngine(
        db, registry,
        LTPGConfig(batch_size=8, batched_exec=True, parallel_workers=2),
    )
    with engine:
        with pytest.raises(ParallelExecutionError, match="deposit"):
            engine.run_batch([Transaction("deposit", (1, 5), tid=0)])
    assert _shm_segments() == []


# ---------------------------------------------------------------------------
# Pool lifecycle and teardown
# ---------------------------------------------------------------------------
def _live_workers() -> list:
    return [p for p in mp.active_children() if p.name.startswith("ltpg-worker")]


def test_engine_close_tears_down_pool_and_segments():
    db, registry, gen = build_smallbank(num_accounts=200, zipf_alpha=1.0, seed=1)
    engine = LTPGEngine(
        db, registry,
        LTPGConfig(batch_size=64, batched_exec=True, parallel_workers=2),
    )
    batch = [
        Transaction(t.procedure_name, t.params, tid=i)
        for i, t in enumerate(gen.make_batch(64))
    ]
    engine.run_batch(batch)
    assert len(_live_workers()) == 2
    assert _shm_segments() != []
    engine.close()
    engine.close()  # idempotent
    deadline = time.monotonic() + 10
    while _live_workers() and time.monotonic() < deadline:
        time.sleep(0.01)
    assert _live_workers() == []
    assert _shm_segments() == []
    # the engine still works after close: the pool is rebuilt lazily
    batch2 = [
        Transaction(t.procedure_name, t.params, tid=i)
        for i, t in enumerate(gen.make_batch(64))
    ]
    engine.run_batch(batch2)
    engine.close()
    assert _shm_segments() == []


def test_engine_context_manager_closes_pool():
    db, registry, gen = build_smallbank(num_accounts=200, zipf_alpha=1.0, seed=2)
    with LTPGEngine(
        db, registry,
        LTPGConfig(batch_size=64, batched_exec=True, parallel_workers=2),
    ) as engine:
        batch = [
            Transaction(t.procedure_name, t.params, tid=i)
            for i, t in enumerate(gen.make_batch(64))
        ]
        engine.run_batch(batch)
    deadline = time.monotonic() + 10
    while _live_workers() and time.monotonic() < deadline:
        time.sleep(0.01)
    assert _live_workers() == []
    assert _shm_segments() == []


def test_parent_arrays_private_again_after_close():
    """Closing the snapshot must hand the tables private heap copies:
    the database stays fully usable after the pool is gone."""
    db, registry, gen = build_smallbank(num_accounts=100, zipf_alpha=1.0, seed=4)
    config = LTPGConfig(batch_size=32, batched_exec=True, parallel_workers=1)
    engine = LTPGEngine(db, registry, config)
    batch = [
        Transaction(t.procedure_name, t.params, tid=i)
        for i, t in enumerate(gen.make_batch(32))
    ]
    engine.run_batch(batch)
    digest = db.state_digest()
    engine.close()
    assert db.state_digest() == digest
    # a post-close, in-process batch still runs against the private copies
    engine2 = LTPGEngine(db, registry, dataclasses.replace(config, parallel_workers=0))
    batch2 = [
        Transaction(t.procedure_name, t.params, tid=i)
        for i, t in enumerate(gen.make_batch(32))
    ]
    engine2.run_batch(batch2)


# ---------------------------------------------------------------------------
# Shard observability: execute.shards spans + shard metrics
# ---------------------------------------------------------------------------
def test_shard_spans_and_metrics_recorded():
    db, registry, gen = build_smallbank(num_accounts=200, zipf_alpha=1.0, seed=1)
    config = LTPGConfig(
        batch_size=64, batched_exec=True, parallel_workers=2, trace=True
    )
    with LTPGEngine(db, registry, config) as engine:
        batch = [
            Transaction(t.procedure_name, t.params, tid=i)
            for i, t in enumerate(gen.make_batch(64))
        ]
        engine.run_batch(batch)
        spans = engine.tracer.spans_on(engine.SHARD_TRACK)
        assert {s.name for s in spans} == {"shard:w0", "shard:w1"}
        assert sum(s.args["lanes"] for s in spans) == 64
        snap = engine.metrics.snapshot()
        lanes = snap["histograms"]["execute.shard_lanes"]
        assert set(lanes) == {"w0", "w1"}
        assert snap["gauges"]["execute.merge_ns"]["last"] > 0


def test_no_shard_track_without_parallel():
    """Traced single-process runs must not grow a shard track — trace
    byte-stability for parallel_workers=0 is the determinism contract."""
    db, registry, gen = build_smallbank(num_accounts=200, zipf_alpha=1.0, seed=1)
    config = LTPGConfig(batch_size=64, batched_exec=True, trace=True)
    with LTPGEngine(db, registry, config) as engine:
        batch = [
            Transaction(t.procedure_name, t.params, tid=i)
            for i, t in enumerate(gen.make_batch(64))
        ]
        engine.run_batch(batch)
        assert engine.tracer.spans_on(engine.SHARD_TRACK) == []
        snap = engine.metrics.snapshot()
        assert "execute.merge_ns" not in snap["gauges"]
        assert "execute.shard_lanes" not in snap["histograms"]


# ---------------------------------------------------------------------------
# Assembly prefetch: identical RunStats with and without the overlap
# ---------------------------------------------------------------------------
def _steady_state(prefetch: bool, retry_delay: int, workers: int = 0):
    db, registry, gen = build_smallbank(num_accounts=300, zipf_alpha=1.5, seed=6)
    config = LTPGConfig(
        batch_size=128,
        batched_exec=True,
        parallel_workers=workers,
        prefetch_assembly=prefetch,
        retry_delay_batches=retry_delay,
    )
    with LTPGEngine(db, registry, config) as engine:
        result = steady_state_run(engine, gen, batch_size=128, num_batches=6)
        digest = engine.database.state_digest()
    stats = [
        (b.committed, b.aborted, b.logic_aborted, dict(b.phase_ns))
        for b in result.run.batches
    ]
    return stats, result.run.total_committed, result.makespan_ns, digest


@pytest.mark.parametrize("retry_delay", [1, 2])
def test_prefetch_assembly_identical_run_stats(retry_delay):
    # delay 1 degrades to the synchronous path (the next shortfall
    # depends on the current batch's aborts); delay 2 actually overlaps
    assert _steady_state(True, retry_delay) == _steady_state(False, retry_delay)


def test_prefetch_with_parallel_workers_identical():
    assert _steady_state(True, 2, workers=2) == _steady_state(False, 2, workers=0)
    assert _shm_segments() == []


# ---------------------------------------------------------------------------
# Suite hygiene: nothing left in /dev/shm (runs last in this module)
# ---------------------------------------------------------------------------
def test_no_shm_segments_leaked():
    assert _shm_segments() == []

"""Device, streams, kernel costing, memory manager, profiler."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import DeviceError, OutOfDeviceMemory
from repro.gpusim import (
    CostModel,
    Device,
    DeviceConfig,
    KernelStats,
    LaunchGeometry,
    MemoryManager,
    MemorySpace,
    PageTracker,
    Stream,
)


class TestLaunchGeometry:
    def test_threads(self):
        g = LaunchGeometry(grid=4, block=128)
        assert g.threads == 512

    def test_warps_rounds_up(self):
        g = LaunchGeometry(grid=2, block=100)
        assert g.warps(32) == 2 * 4

    def test_for_threads_small(self):
        g = LaunchGeometry.for_threads(10)
        assert g.threads >= 10

    def test_for_threads_large(self):
        g = LaunchGeometry.for_threads(10_000)
        assert g.threads >= 10_000
        assert g.block == 256

    def test_invalid(self):
        with pytest.raises(DeviceError):
            LaunchGeometry(grid=0, block=1)
        with pytest.raises(DeviceError):
            LaunchGeometry.for_threads(0)


class TestCostModel:
    def test_more_work_costs_more(self):
        model = CostModel(DeviceConfig())
        small = KernelStats(threads=256, instructions=1000)
        large = KernelStats(threads=256, instructions=100_000)
        assert model.kernel_ns(large) > model.kernel_ns(small)

    def test_parallelism_caps_at_lane_count(self):
        cfg = DeviceConfig()
        model = CostModel(cfg)
        work = dict(instructions=10_000_000)
        few = KernelStats(threads=cfg.total_lanes, **work)
        many = KernelStats(threads=cfg.total_lanes * 10, **work)
        # Same work, more threads than lanes: no further speedup.
        assert model.kernel_ns(few) == pytest.approx(model.kernel_ns(many))

    def test_atomic_chain_serialization_sublinear(self):
        model = CostModel(DeviceConfig())
        base = KernelStats(threads=1024, atomic_ops=1024)
        hot = KernelStats(
            threads=1024, atomic_ops=1024, atomic_serialized=1023,
            atomic_max_chain=1024,
        )
        t_base = model.kernel_timing(base)
        t_hot = model.kernel_timing(hot)
        assert t_hot.serialization_ns > t_base.serialization_ns
        # sqrt law: chain of 1024 costs ~32 collision units, not 1024
        assert t_hot.serialization_ns < 1024 * DeviceConfig().atomic_conflict_ns

    def test_bigger_chain_costs_more(self):
        model = CostModel(DeviceConfig())
        a = KernelStats(threads=64, atomic_ops=64, atomic_max_chain=8,
                        atomic_serialized=7)
        b = KernelStats(threads=64, atomic_ops=64, atomic_max_chain=64,
                        atomic_serialized=63)
        assert model.kernel_ns(b) > model.kernel_ns(a)

    def test_page_faults_charged(self):
        model = CostModel(DeviceConfig())
        clean = KernelStats(threads=32)
        faulty = KernelStats(threads=32, um_page_faults=100)
        delta = model.kernel_ns(faulty) - model.kernel_ns(clean)
        assert delta == pytest.approx(100 * DeviceConfig().um_page_fault_ns)


class TestStream:
    def test_enqueue_advances_clock(self):
        s = Stream("s")
        end = s.enqueue(100.0)
        assert end == 100.0
        assert s.enqueue(50.0) == 150.0

    def test_not_before_constraint(self):
        s = Stream("s")
        s.enqueue(10.0)
        assert s.enqueue(5.0, not_before_ns=100.0) == 105.0

    def test_events_order_cross_stream(self):
        a, b = Stream("a"), Stream("b")
        a.enqueue(500.0)
        from repro.gpusim import Event

        ev = Event("done")
        a.record_event(ev)
        b.wait_event(ev)
        assert b.time_ns == 500.0

    def test_wait_unrecorded_event_rejected(self):
        from repro.gpusim import Event

        with pytest.raises(DeviceError):
            Stream("s").wait_event(Event("nope"))

    def test_destroyed_stream_unusable(self):
        s = Stream("s")
        s.destroy()
        with pytest.raises(DeviceError):
            s.enqueue(1.0)


class TestDevice:
    def test_kernel_advances_clock_and_profiles(self):
        device = Device()
        with device.kernel("k1", threads=64) as ctx:
            ctx.add_instructions(1000)
        assert device.elapsed_ns() > 0
        assert device.profiler.by_kernel()["k1"] > 0

    def test_kernel_requires_exactly_one_shape(self):
        device = Device()
        with pytest.raises(DeviceError):
            with device.kernel("k"):
                pass
        with pytest.raises(DeviceError):
            with device.kernel("k", threads=1, geometry=LaunchGeometry(1, 32)):
                pass

    def test_copy_cost_scales_with_bytes(self):
        device = Device()
        small = device.copy(1_000, "h2d")
        large = device.copy(100_000_000, "h2d")
        assert large > small

    def test_copy_kind_validated(self):
        with pytest.raises(DeviceError):
            Device().copy(10, "sideways")

    def test_synchronize_aligns_streams(self):
        device = Device()
        device.stream("a").enqueue(1000.0)
        device.stream("b").enqueue(10.0)
        t = device.synchronize()
        assert device.stream("b").time_ns == t

    def test_reset_clock(self):
        device = Device()
        device.copy(1000, "h2d")
        device.reset_clock()
        assert device.elapsed_ns() == 0
        assert not device.profiler.entries

    def test_independent_streams_overlap(self):
        device = Device()
        device.copy(1_000_000, "h2d", stream="copy")
        with device.kernel("k", threads=32, stream="compute") as ctx:
            ctx.add_instructions(10)
        # both ran from t=0 on their own timelines
        assert device.stream("copy").time_ns > 0
        assert device.stream("compute").time_ns > 0
        total = device.stream("copy").busy_ns + device.stream("compute").busy_ns
        assert device.elapsed_ns() < total


class TestMemoryManager:
    def test_alloc_and_get(self):
        mem = MemoryManager(DeviceConfig())
        buf = mem.alloc("t", (8,), fill=3)
        assert mem.get("t") is buf
        assert buf.array[0] == 3

    def test_duplicate_name_rejected(self):
        mem = MemoryManager(DeviceConfig())
        mem.alloc("t", (8,))
        with pytest.raises(DeviceError):
            mem.alloc("t", (8,))

    def test_capacity_enforced(self):
        cfg = dataclasses.replace(DeviceConfig(), device_memory_bytes=1024)
        mem = MemoryManager(cfg)
        with pytest.raises(OutOfDeviceMemory):
            mem.alloc("big", (1024,))  # 8 KiB of int64 > 1 KiB

    def test_free_returns_capacity(self):
        cfg = dataclasses.replace(DeviceConfig(), device_memory_bytes=1024)
        mem = MemoryManager(cfg)
        mem.alloc("a", (64,))
        assert mem.device_bytes_free == 1024 - 512
        mem.free("a")
        assert mem.device_bytes_free == 1024

    def test_zero_copy_does_not_consume_device_memory(self):
        cfg = dataclasses.replace(DeviceConfig(), device_memory_bytes=64)
        mem = MemoryManager(cfg)
        mem.alloc("host", (1024,), space=MemorySpace.ZERO_COPY)
        assert mem.device_bytes_used == 0


class TestPageTracker:
    def test_first_touch_faults(self):
        pages = PageTracker(capacity_pages=10)
        assert pages.touch("t", [0, 1, 2]) == 3

    def test_resident_pages_hit(self):
        pages = PageTracker(capacity_pages=10)
        pages.touch("t", [0, 1])
        assert pages.touch("t", [0, 1]) == 0

    def test_lru_eviction(self):
        pages = PageTracker(capacity_pages=2)
        pages.touch("t", [0])
        pages.touch("t", [1])
        pages.touch("t", [2])  # evicts 0
        assert pages.touch("t", [0]) == 1

    def test_touch_refreshes_recency(self):
        pages = PageTracker(capacity_pages=2)
        pages.touch("t", [0])
        pages.touch("t", [1])
        pages.touch("t", [0])  # 0 now most recent
        pages.touch("t", [2])  # evicts 1, not 0
        assert pages.touch("t", [0]) == 0
        assert pages.touch("t", [1]) == 1

    def test_buffers_namespaced(self):
        pages = PageTracker(capacity_pages=4)
        pages.touch("a", [0])
        assert pages.touch("b", [0]) == 1
